#include "core/toolflow.hh"

#include <cstdlib>
#include <filesystem>
#include <functional>

#include "sim/func_sim.hh"
#include "util/logging.hh"

namespace tea::core {

using timing::CampaignStats;

ToolflowOptions
optionsFromEnv()
{
    ToolflowOptions opt;
    if (const char *runs = std::getenv("REPRO_RUNS"))
        opt.runsPerCell = std::max(1, std::atoi(runs));
    if (const char *full = std::getenv("REPRO_FULL");
        full && full[0] == '1') {
        opt.runsPerCell = inject::kStatisticalRuns;
        opt.iaCountPerOp = 20000;
        opt.waMaxOps = 100000;
        opt.daSampleOps = 100000;
    }
    if (const char *seed = std::getenv("REPRO_SEED"))
        opt.seed = std::strtoull(seed, nullptr, 0);
    if (const char *cache = std::getenv("REPRO_CACHE"))
        opt.cacheDir = cache;
    opt.threads = ThreadPool::defaultThreads();
    return opt;
}

Toolflow::Toolflow(ToolflowOptions opt)
    : opt_(std::move(opt)),
      pool_(std::make_unique<ThreadPool>(opt_.threads)),
      core_(std::make_unique<fpu::FpuCore>())
{
    if (!opt_.cacheDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt_.cacheDir, ec);
        if (ec) {
            warn("cannot create cache dir '%s'; caching disabled",
                 opt_.cacheDir.c_str());
            opt_.cacheDir.clear();
        }
    }
}

size_t
Toolflow::pointFor(double vrFrac)
{
    int key = static_cast<int>(vrFrac * 10000 + 0.5);
    auto it = points_.find(key);
    if (it != points_.end())
        return it->second;
    double scale = vm_.delayFactorAtReduction(vrFrac);
    size_t idx = core_->addOperatingPoint(scale);
    points_[key] = idx;
    return idx;
}

std::string
Toolflow::cachePath(const std::string &tag, double vrFrac) const
{
    if (opt_.cacheDir.empty())
        return "";
    // "p1" names the sharded-campaign algorithm revision: shard
    // geometry and per-shard Rng forking changed the (deterministic)
    // statistics, so pre-sharding cache files must not be picked up.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "_vr%02d_s%llu_p1.stats",
                  static_cast<int>(vrFrac * 100 + 0.5),
                  static_cast<unsigned long long>(opt_.seed));
    return opt_.cacheDir + "/" + tag + buf;
}

const CampaignStats &
Toolflow::characterize(
    const std::string &tag, double vrFrac,
    const std::function<CampaignStats(size_t)> &run)
{
    char keyBuf[32];
    std::snprintf(keyBuf, sizeof(keyBuf), "@%.4f", vrFrac);
    std::string key = tag + keyBuf;
    auto it = statsCache_.find(key);
    if (it != statsCache_.end())
        return it->second;

    std::string path = cachePath(tag, vrFrac);
    CampaignStats stats;
    if (!path.empty() && models::loadCampaignStats(path, stats)) {
        inform("loaded cached characterization %s", path.c_str());
        return statsCache_.emplace(key, std::move(stats)).first->second;
    }
    size_t point = pointFor(vrFrac);
    stats = run(point);
    if (!path.empty())
        models::saveCampaignStats(path, stats);
    return statsCache_.emplace(key, std::move(stats)).first->second;
}

const CampaignStats &
Toolflow::iaStats(double vrFrac)
{
    char tag[64];
    std::snprintf(tag, sizeof(tag), "ia_n%llu",
                  static_cast<unsigned long long>(opt_.iaCountPerOp));
    return characterize(tag, vrFrac, [&](size_t point) {
        Rng rng(opt_.seed ^ 0x1a1a1aULL);
        inform("IA characterization at VR%.0f (%llu ops/type, "
               "%u threads)...",
               vrFrac * 100,
               static_cast<unsigned long long>(opt_.iaCountPerOp),
               pool_->numThreads());
        return timing::runRandomCampaign(*core_, point,
                                         opt_.iaCountPerOp, rng,
                                         pool_.get());
    });
}

const CampaignStats &
Toolflow::waStats(const std::string &workload, double vrFrac)
{
    char tag[96];
    std::snprintf(tag, sizeof(tag), "wa_%s_n%llu", workload.c_str(),
                  static_cast<unsigned long long>(opt_.waMaxOps));
    return characterize(tag, vrFrac, [&](size_t point) {
        inform("WA characterization of %s at VR%.0f (%u threads)...",
               workload.c_str(), vrFrac * 100, pool_->numThreads());
        return timing::runTraceCampaign(*core_, point, trace(workload),
                                        opt_.waMaxOps, pool_.get());
    });
}

double
Toolflow::daErrorRatio(double vrFrac)
{
    int key = static_cast<int>(vrFrac * 10000 + 0.5);
    auto it = daEr_.find(key);
    if (it != daEr_.end())
        return it->second;
    // Monte-Carlo over instructions randomly extracted from all
    // benchmarks (paper Section IV.C.1) — realized as an even trace
    // sample per workload.
    char tag[64];
    std::snprintf(tag, sizeof(tag), "da_n%llu",
                  static_cast<unsigned long long>(opt_.daSampleOps));
    const CampaignStats &stats =
        characterize(tag, vrFrac, [&](size_t point) {
            inform("DA calibration at VR%.0f...", vrFrac * 100);
            CampaignStats merged;
            uint64_t per =
                opt_.daSampleOps / workloads::workloadNames().size();
            for (const auto &name : workloads::workloadNames()) {
                auto s = timing::runTraceCampaign(*core_, point,
                                                  trace(name), per,
                                                  pool_.get());
                for (unsigned o = 0; o < fpu::kNumFpuOps; ++o)
                    merged.perOp[o].merge(s.perOp[o]);
            }
            return merged;
        });
    double er = stats.errorRatio();
    daEr_[key] = er;
    return er;
}

models::DaModel
Toolflow::daModel(double vrFrac)
{
    return models::DaModel(daErrorRatio(vrFrac));
}

models::IaModel
Toolflow::iaModel(double vrFrac)
{
    return models::IaModel(iaStats(vrFrac));
}

models::WaModel
Toolflow::waModel(const std::string &workload, double vrFrac)
{
    return models::WaModel(workload, waStats(workload, vrFrac));
}

const workloads::Workload &
Toolflow::workload(const std::string &name)
{
    auto it = workloads_.find(name);
    if (it == workloads_.end()) {
        it = workloads_
                 .emplace(name, workloads::buildWorkload(
                                    name, opt_.seed, opt_.workloadScale))
                 .first;
    }
    return it->second;
}

const std::vector<sim::FpTraceEntry> &
Toolflow::trace(const std::string &name)
{
    auto it = traces_.find(name);
    if (it == traces_.end()) {
        const auto &w = workload(name);
        sim::FuncSim sim(w.program);
        std::vector<sim::FpTraceEntry> tr;
        sim.setFpTrace(&tr);
        auto res = sim.run();
        fatal_if(res.status != sim::FuncSim::Status::Halted,
                 "workload '%s' did not halt while tracing",
                 name.c_str());
        it = traces_.emplace(name, std::move(tr)).first;
    }
    return it->second;
}

inject::InjectionCampaign &
Toolflow::campaign(const std::string &name)
{
    auto it = campaigns_.find(name);
    if (it == campaigns_.end()) {
        it = campaigns_
                 .emplace(name,
                          std::make_unique<inject::InjectionCampaign>(
                              workload(name)))
                 .first;
    }
    return *it->second;
}

} // namespace tea::core
