#include "core/toolflow.hh"

#include <cerrno>
#include <chrono>
#include <cmath>
#include <condition_variable>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <functional>
#include <mutex>
#include <set>

#include "mc/mc_func_sim.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"
#include "sim/func_sim.hh"
#include "util/crc32.hh"
#include "util/logging.hh"

namespace tea::core {

using timing::CampaignStats;

namespace {

/**
 * Strict environment-integer parse: the whole value must be one
 * integer (base 0: decimal/hex/octal). Garbage or overflow keeps the
 * default with a warn, so a typo degrades to the documented default
 * instead of silently running a different experiment.
 */
bool
parseEnvI64(const char *name, const char *value, int64_t &out)
{
    errno = 0;
    char *end = nullptr;
    long long v = std::strtoll(value, &end, 0);
    if (end == value || *end != '\0' || errno == ERANGE) {
        warn("ignoring malformed %s='%s'", name, value);
        return false;
    }
    out = v;
    return true;
}

bool
parseEnvU64(const char *name, const char *value, uint64_t &out)
{
    errno = 0;
    char *end = nullptr;
    unsigned long long v = std::strtoull(value, &end, 0);
    if (end == value || *end != '\0' || errno == ERANGE ||
        value[0] == '-') {
        warn("ignoring malformed %s='%s'", name, value);
        return false;
    }
    out = v;
    return true;
}

bool
parseEnvDouble(const char *name, const char *value, double &out)
{
    errno = 0;
    char *end = nullptr;
    double v = std::strtod(value, &end);
    if (end == value || *end != '\0' || errno == ERANGE ||
        !std::isfinite(v)) {
        warn("ignoring malformed %s='%s'", name, value);
        return false;
    }
    out = v;
    return true;
}

} // namespace

ToolflowOptions
optionsFromEnv()
{
    ToolflowOptions opt;
    if (const char *runs = std::getenv("REPRO_RUNS")) {
        int64_t v;
        if (parseEnvI64("REPRO_RUNS", runs, v)) {
            if (v < 1) {
                warn("clamping REPRO_RUNS=%lld to 1",
                     static_cast<long long>(v));
                v = 1;
            } else if (v > 1000000) {
                warn("clamping REPRO_RUNS=%lld to 1000000",
                     static_cast<long long>(v));
                v = 1000000;
            }
            opt.runsPerCell = static_cast<int>(v);
        }
    }
    if (const char *full = std::getenv("REPRO_FULL");
        full && full[0] == '1') {
        opt.runsPerCell = inject::kStatisticalRuns;
        opt.iaCountPerOp = 20000;
        opt.waMaxOps = 100000;
        opt.daSampleOps = 100000;
    }
    if (const char *seed = std::getenv("REPRO_SEED")) {
        uint64_t v;
        if (parseEnvU64("REPRO_SEED", seed, v))
            opt.seed = v;
    }
    if (const char *cache = std::getenv("REPRO_CACHE"))
        opt.cacheDir = cache;
    if (const char *resume = std::getenv("REPRO_RESUME"))
        opt.resume = resume[0] == '1';
    if (const char *dl = std::getenv("REPRO_RUN_DEADLINE_MS")) {
        int64_t v;
        if (parseEnvI64("REPRO_RUN_DEADLINE_MS", dl, v)) {
            if (v < 0) {
                warn("clamping REPRO_RUN_DEADLINE_MS=%lld to 0 "
                     "(disabled)",
                     static_cast<long long>(v));
                v = 0;
            }
            opt.runDeadlineMs = v;
        }
    }
    if (const char *ci = std::getenv("REPRO_CI_TARGET")) {
        double v;
        if (parseEnvDouble("REPRO_CI_TARGET", ci, v)) {
            if (v < 0.0) {
                warn("clamping REPRO_CI_TARGET=%g to 0 (adaptive off)",
                     v);
                v = 0.0;
            } else if (v >= 0.5) {
                warn("clamping REPRO_CI_TARGET=%g to 0.49", v);
                v = 0.49;
            }
            opt.ciTarget = v;
        }
    }
    if (const char *conf = std::getenv("REPRO_CI_CONF")) {
        double v;
        if (parseEnvDouble("REPRO_CI_CONF", conf, v)) {
            if (v <= 0.5 || v >= 1.0) {
                warn("REPRO_CI_CONF=%g outside (0.5, 1); keeping %g", v,
                     opt.ciConf);
            } else {
                opt.ciConf = v;
            }
        }
    }
    if (const char *cap = std::getenv("REPRO_MAX_RUNS")) {
        uint64_t v;
        if (parseEnvU64("REPRO_MAX_RUNS", cap, v))
            opt.maxAdaptiveRuns = v;
    }
    if (const char *is = std::getenv("REPRO_IS"))
        opt.isEnable = is[0] == '1';
    if (const char *boost = std::getenv("REPRO_IS_BOOST")) {
        double v;
        if (parseEnvDouble("REPRO_IS_BOOST", boost, v)) {
            if (v < 1.0) {
                warn("clamping REPRO_IS_BOOST=%g to 1 (no tilt)", v);
                v = 1.0;
            } else if (v > 64.0) {
                warn("clamping REPRO_IS_BOOST=%g to 64", v);
                v = 64.0;
            }
            opt.isBoost = v;
        }
    }
    if (const char *floor = std::getenv("REPRO_IS_FLOOR")) {
        double v;
        if (parseEnvDouble("REPRO_IS_FLOOR", floor, v)) {
            if (v <= 0.0 || v > 1.0) {
                warn("REPRO_IS_FLOOR=%g outside (0, 1]; keeping %g", v,
                     opt.isFloor);
            } else {
                opt.isFloor = v;
            }
        }
    }
    if (const char *mt = std::getenv("REPRO_IS_MAXTILT")) {
        double v;
        if (parseEnvDouble("REPRO_IS_MAXTILT", mt, v)) {
            if (v < 0.1) {
                warn("clamping REPRO_IS_MAXTILT=%g to 0.1", v);
                v = 0.1;
            }
            opt.isMaxTilted = v;
        }
    }
    if (const char *corpus = std::getenv("REPRO_IS_CORPUS")) {
        uint64_t v;
        if (parseEnvU64("REPRO_IS_CORPUS", corpus, v)) {
            if (v < 100) {
                warn("clamping REPRO_IS_CORPUS=%llu to 100",
                     static_cast<unsigned long long>(v));
                v = 100;
            } else if (v > 1000000) {
                warn("clamping REPRO_IS_CORPUS=%llu to 1000000",
                     static_cast<unsigned long long>(v));
                v = 1000000;
            }
            opt.isCorpusPerOp = v;
        }
    }
    if (const char *cores = std::getenv("REPRO_MC_CORES")) {
        uint64_t v;
        if (parseEnvU64("REPRO_MC_CORES", cores, v)) {
            if (v < 1) {
                warn("clamping REPRO_MC_CORES=%llu to 1",
                     static_cast<unsigned long long>(v));
                v = 1;
            } else if (v > isa::kMcMaxCores) {
                warn("clamping REPRO_MC_CORES=%llu to %u",
                     static_cast<unsigned long long>(v),
                     isa::kMcMaxCores);
                v = isa::kMcMaxCores;
            }
            opt.mcCores = static_cast<unsigned>(v);
        }
    }
    if (const char *q = std::getenv("REPRO_MC_QUANTUM")) {
        uint64_t v;
        if (parseEnvU64("REPRO_MC_QUANTUM", q, v)) {
            if (v < 1) {
                warn("clamping REPRO_MC_QUANTUM=%llu to 1",
                     static_cast<unsigned long long>(v));
                v = 1;
            } else if (v > 1000000) {
                warn("clamping REPRO_MC_QUANTUM=%llu to 1000000",
                     static_cast<unsigned long long>(v));
                v = 1000000;
            }
            opt.mcQuantum = static_cast<unsigned>(v);
        }
    }
    if (const char *be = std::getenv("REPRO_DTA_BACKEND")) {
        circuit::DtaBackend b;
        if (circuit::parseDtaBackend(be, b))
            opt.dtaBackend = b;
        else
            warn("REPRO_DTA_BACKEND='%s' invalid (want "
                 "levelized|lane|compiled); keeping %s",
                 be, circuit::dtaBackendName(opt.dtaBackend));
    }
    opt.threads = ThreadPool::defaultThreads();
    return opt;
}

Toolflow::Toolflow(ToolflowOptions opt)
    : opt_(std::move(opt)),
      pool_(std::make_unique<ThreadPool>(opt_.threads)),
      core_(std::make_unique<fpu::FpuCore>())
{
    // First SIGINT/SIGTERM flips the process-wide cancel token; the
    // campaigns poll it cooperatively, flush their journals, and the
    // drivers print partial results instead of dying mid-write.
    installShutdownHandlers();
    // Arm REPRO_TRACE / REPRO_METRICS (idempotent; bench mains may
    // already have armed them from --trace/--metrics flags).
    obs::configureFromEnv();
    // The options struct, not the raw env, decides the batched-DTA
    // engine — so programmatic Toolflow users get the same knob.
    circuit::setDtaBackend(opt_.dtaBackend);
    if (!opt_.cacheDir.empty()) {
        std::error_code ec;
        std::filesystem::create_directories(opt_.cacheDir, ec);
        if (ec) {
            warn("cannot create cache dir '%s'; caching disabled",
                 opt_.cacheDir.c_str());
            opt_.cacheDir.clear();
        }
    }
}

size_t
Toolflow::pointFor(double vrFrac)
{
    int key = static_cast<int>(vrFrac * 10000 + 0.5);
    auto it = points_.find(key);
    if (it != points_.end())
        return it->second;
    double scale = vm_.delayFactorAtReduction(vrFrac);
    size_t idx = core_->addOperatingPoint(scale);
    points_[key] = idx;
    return idx;
}

std::string
Toolflow::cacheTag(const char *prefix, const std::string &name,
                   uint64_t n)
{
    // Sanitize: the name lands in a filename, so anything outside
    // [A-Za-z0-9._-] becomes '_'.
    std::string safe;
    safe.reserve(name.size());
    for (char c : name) {
        bool ok = (c >= 'a' && c <= 'z') || (c >= 'A' && c <= 'Z') ||
                  (c >= '0' && c <= '9') || c == '.' || c == '_' ||
                  c == '-';
        safe.push_back(ok ? c : '_');
    }
    // Long names are shortened to a readable prefix plus a CRC of the
    // *original* string: bounded length, and no two distinct names map
    // to the same tag the way plain truncation would.
    constexpr size_t kMaxName = 32;
    if (safe.size() > kMaxName) {
        char suffix[16];
        std::snprintf(suffix, sizeof(suffix), "~%08x",
                      crc32(name.data(), name.size()));
        safe = safe.substr(0, kMaxName - 9) + suffix;
    }
    char count[32];
    std::snprintf(count, sizeof(count), "_n%llu",
                  static_cast<unsigned long long>(n));
    return std::string(prefix) + "_" + safe + count;
}

std::string
Toolflow::cachePath(const std::string &tag, double vrFrac) const
{
    if (opt_.cacheDir.empty())
        return "";
    // "p3" names the cache-file revision: p1 was the sharded-campaign
    // statistics without an integrity envelope; p2 added the
    // CRC-guarded format; p3 switched the levelized engine's arrival
    // accumulation from float to double, which can reclassify
    // capture-edge samples and so invalidates cached statistics.
    char buf[64];
    std::snprintf(buf, sizeof(buf), "_vr%02d_s%llu_p3.stats",
                  static_cast<int>(vrFrac * 100 + 0.5),
                  static_cast<unsigned long long>(opt_.seed));
    return opt_.cacheDir + "/" + tag + buf;
}

bool
Toolflow::quarantineCache(const std::string &path)
{
    // The first .bad capture is the interesting evidence (it shows
    // what originally rotted); later corruption of the regenerated
    // file claims .bad2, .bad3, ... instead of overwriting it.
    std::error_code lastEc;
    for (int i = 1; i <= 9; ++i) {
        char suffix[8];
        if (i == 1)
            std::snprintf(suffix, sizeof(suffix), ".bad");
        else
            std::snprintf(suffix, sizeof(suffix), ".bad%d", i);
        std::string bad = path + suffix;
        std::error_code ec;
        if (std::filesystem::exists(bad, ec))
            continue;
        std::filesystem::rename(path, bad, ec);
        if (!ec) {
            warn("corrupt cache '%s' quarantined to '%s'; regenerating",
                 path.c_str(), bad.c_str());
            return true;
        }
        lastEc = ec;
    }
    warn("corrupt cache '%s' could not be quarantined (%s); "
         "regenerating over it",
         path.c_str(),
         lastEc ? lastEc.message().c_str() : "no free quarantine slot");
    return false;
}

namespace {

/**
 * Process-wide singleflight over on-disk characterization caches.
 * Two concurrent campaigns (daemon executor threads, each with its own
 * Toolflow but one shared cache dir) that need the same
 * (unit, operating point) characterization would otherwise both run
 * the gate-level campaign; instead the first becomes the leader and
 * the rest wait, then re-read the leader's freshly saved cache file.
 * Keyed on the cache *path* — the full on-disk identity (tag, VR,
 * seed, revision) — so distinct characterizations never serialize.
 */
struct StatsSingleflight
{
    std::mutex mu;
    std::condition_variable cv;
    std::set<std::string> inflight;
};

StatsSingleflight &
statsSingleflight()
{
    static StatsSingleflight sf;
    return sf;
}

} // namespace

const CampaignStats &
Toolflow::characterize(
    const std::string &tag, double vrFrac,
    const std::function<CampaignStats(size_t)> &run)
{
    char keyBuf[32];
    std::snprintf(keyBuf, sizeof(keyBuf), "@%.4f", vrFrac);
    std::string key = tag + keyBuf;
    auto it = statsCache_.find(key);
    if (it != statsCache_.end())
        return it->second;

    obs::Registry &reg = obs::Registry::global();
    std::string path = cachePath(tag, vrFrac);
    CampaignStats stats;
    bool leader = false;
    StatsSingleflight &sf = statsSingleflight();
    auto releaseLead = [&] {
        if (!leader)
            return;
        std::lock_guard<std::mutex> lock(sf.mu);
        sf.inflight.erase(path);
        sf.cv.notify_all();
    };
    if (!path.empty()) {
        for (;;) {
            switch (models::loadCampaignStats(path, stats)) {
              case models::CacheLoad::Loaded:
                releaseLead();
                inform("loaded cached characterization %s",
                       path.c_str());
                reg.counter(obs::metric::kCacheHits, "",
                            "characterizations served from the stats "
                            "cache")
                    .inc(1);
                return statsCache_.emplace(key, std::move(stats))
                    .first->second;
              case models::CacheLoad::Missing:
                reg.counter(obs::metric::kCacheMisses, "",
                            "characterizations recomputed on a cold "
                            "cache")
                    .inc(1);
                break; // cold cache: the quiet, normal case
              case models::CacheLoad::Corrupt:
                reg.counter(obs::metric::kCacheCorrupt, "",
                            "cache files quarantined after failing "
                            "integrity checks")
                    .inc(1);
                quarantineCache(path);
                stats = CampaignStats{};
                break;
            }
            std::unique_lock<std::mutex> lock(sf.mu);
            if (!sf.inflight.count(path)) {
                sf.inflight.insert(path);
                leader = true;
                break;
            }
            // Someone else is computing this exact characterization
            // right now: wait, then re-read their saved cache.
            reg.counter(obs::metric::kCacheSingleflight, "",
                        "characterizations that waited on a concurrent "
                        "identical computation")
                .inc(1);
            sf.cv.wait(lock,
                       [&] { return !sf.inflight.count(path); });
        }
    }
    size_t point = pointFor(vrFrac);
    obs::Span span("toolflow.characterize", "toolflow");
    stats = run(point);
    if (stats.interrupted) {
        // Partial statistics must never feed models or caches.
        inform("characterization '%s' interrupted; partial statistics "
               "discarded — rerun to characterize fully",
               key.c_str());
        std::exit(130);
    }
    if (stats.engineFaults > 0) {
        warn("characterization '%s' degraded (%llu shard(s) dropped "
             "after repeated faults); statistics kept for this run but "
             "not cached",
             key.c_str(),
             static_cast<unsigned long long>(stats.engineFaults));
    } else if (!path.empty()) {
        models::saveCampaignStats(path, stats);
    }
    releaseLead();
    return statsCache_.emplace(key, std::move(stats)).first->second;
}

namespace {

/**
 * Adaptive characterizations live under their own cache names: the
 * run count is decided by convergence, so the interval parameters —
 * not an op count — are what identify the result. Keeping the name
 * distinct also keeps every fixed-size cache file byte-identical
 * whether or not adaptive mode was ever used.
 */
std::string
adaptiveName(const char *base, const ToolflowOptions &opt)
{
    char buf[96];
    std::snprintf(buf, sizeof(buf), "%s-a%g-c%g", base, opt.ciTarget,
                  opt.ciConf);
    return buf;
}

/** Planner settings shared by the adaptive characterizations. */
stats::PlannerConfig
plannerConfig(const ToolflowOptions &opt, uint64_t cap)
{
    stats::PlannerConfig cfg;
    cfg.ciTarget = opt.ciTarget;
    cfg.ciConf = opt.ciConf;
    cfg.maxPerStratum = cap;
    return cfg;
}

} // namespace

const CampaignStats &
Toolflow::iaStats(double vrFrac)
{
    if (opt_.adaptive()) {
        // Cap far above any realistic convergence point; REPRO_MAX_RUNS
        // tightens it when gate-level time is the binding constraint.
        uint64_t cap = opt_.maxAdaptiveRuns ? opt_.maxAdaptiveRuns
                                            : (1ULL << 20);
        std::string tag =
            cacheTag("ia", adaptiveName("rnd", opt_), cap);
        return characterize(tag, vrFrac, [&](size_t point) {
            Rng rng(opt_.seed ^ 0x1a1a1aULL);
            inform("adaptive IA characterization at VR%.0f "
                   "(half-width %g at %g%%, %u threads)...",
                   vrFrac * 100, opt_.ciTarget, opt_.ciConf * 100,
                   pool_->numThreads());
            return timing::runAdaptiveRandomCampaign(
                *core_, point, plannerConfig(opt_, cap), rng,
                pool_.get(), &cancelWatchdog_);
        });
    }
    std::string tag = cacheTag("ia", "rnd", opt_.iaCountPerOp);
    return characterize(tag, vrFrac, [&](size_t point) {
        Rng rng(opt_.seed ^ 0x1a1a1aULL);
        inform("IA characterization at VR%.0f (%llu ops/type, "
               "%u threads)...",
               vrFrac * 100,
               static_cast<unsigned long long>(opt_.iaCountPerOp),
               pool_->numThreads());
        return timing::runRandomCampaign(*core_, point,
                                         opt_.iaCountPerOp, rng,
                                         pool_.get(),
                                         &cancelWatchdog_);
    });
}

const CampaignStats &
Toolflow::waStats(const std::string &workload, double vrFrac)
{
    if (opt_.adaptive()) {
        // The window list is the fixed-N geometry (extended when
        // REPRO_MAX_RUNS asks for more); a converged adaptive run
        // consumes a bit-exact prefix of it.
        uint64_t cap = opt_.maxAdaptiveRuns ? opt_.maxAdaptiveRuns
                                            : opt_.waMaxOps;
        uint64_t maxOps = std::max(opt_.waMaxOps, cap);
        std::string tag = cacheTag(
            "wa", adaptiveName(workload.c_str(), opt_), maxOps);
        return characterize(tag, vrFrac, [&](size_t point) {
            inform("adaptive WA characterization of %s at VR%.0f "
                   "(half-width %g at %g%%, %u threads)...",
                   workload.c_str(), vrFrac * 100, opt_.ciTarget,
                   opt_.ciConf * 100, pool_->numThreads());
            return timing::runAdaptiveTraceCampaign(
                *core_, point, trace(workload), maxOps,
                plannerConfig(opt_, cap), pool_.get(),
                &cancelWatchdog_);
        });
    }
    std::string tag = cacheTag("wa", workload, opt_.waMaxOps);
    return characterize(tag, vrFrac, [&](size_t point) {
        inform("WA characterization of %s at VR%.0f (%u threads)...",
               workload.c_str(), vrFrac * 100, pool_->numThreads());
        return timing::runTraceCampaign(*core_, point, trace(workload),
                                        opt_.waMaxOps, pool_.get(),
                                        &cancelWatchdog_);
    });
}

double
Toolflow::daErrorRatio(double vrFrac)
{
    int key = static_cast<int>(vrFrac * 10000 + 0.5);
    auto it = daEr_.find(key);
    if (it != daEr_.end())
        return it->second;
    // Monte-Carlo over instructions randomly extracted from all
    // benchmarks (paper Section IV.C.1) — realized as an even trace
    // sample per workload.
    std::string tag =
        opt_.adaptive()
            ? cacheTag("da", adaptiveName("all", opt_),
                       opt_.daSampleOps)
            : cacheTag("da", "all", opt_.daSampleOps);
    const CampaignStats &stats =
        characterize(tag, vrFrac, [&](size_t point) {
            inform("DA calibration at VR%.0f...", vrFrac * 100);
            CampaignStats merged;
            uint64_t per =
                opt_.daSampleOps / workloads::workloadNames().size();
            for (const auto &name : workloads::workloadNames()) {
                auto s =
                    opt_.adaptive()
                        ? timing::runAdaptiveTraceCampaign(
                              *core_, point, trace(name), per,
                              plannerConfig(opt_, per), pool_.get(),
                              &cancelWatchdog_)
                        : timing::runTraceCampaign(*core_, point,
                                                   trace(name), per,
                                                   pool_.get(),
                                                   &cancelWatchdog_);
                // Degradation and interruption are properties of the
                // merged calibration too.
                merged.merge(s);
                if (merged.interrupted)
                    break;
            }
            return merged;
        });
    double er = stats.errorRatio();
    daEr_[key] = er;
    return er;
}

models::DaModel
Toolflow::daModel(double vrFrac)
{
    return models::DaModel(daErrorRatio(vrFrac));
}

models::IaModel
Toolflow::iaModel(double vrFrac)
{
    return models::IaModel(iaStats(vrFrac));
}

models::WaModel
Toolflow::waModel(const std::string &workload, double vrFrac)
{
    return models::WaModel(workload, waStats(workload, vrFrac));
}

const surrogate::ErrorSurrogate &
Toolflow::surrogate()
{
    if (surrogate_)
        return *surrogate_;

    // Identity: everything the trained weights are a function of. The
    // VR levels enter via a CRC over their exact bit patterns, so two
    // level lists that differ in any ulp train separately.
    std::string vrBits;
    for (double vr : opt_.vrLevels) {
        char buf[24];
        uint64_t bits;
        std::memcpy(&bits, &vr, sizeof(bits));
        std::snprintf(buf, sizeof(buf), "%016llx,",
                      static_cast<unsigned long long>(bits));
        vrBits += buf;
    }
    char identity[128];
    std::snprintf(identity, sizeof(identity),
                  "surrogate s%llu n%llu v%08x",
                  static_cast<unsigned long long>(opt_.seed),
                  static_cast<unsigned long long>(opt_.isCorpusPerOp),
                  crc32(vrBits.data(), vrBits.size()));
    std::string path;
    if (!opt_.cacheDir.empty()) {
        char file[96];
        std::snprintf(file, sizeof(file),
                      "/surrogate_s%llu_n%llu_v%08x_p1.sg",
                      static_cast<unsigned long long>(opt_.seed),
                      static_cast<unsigned long long>(
                          opt_.isCorpusPerOp),
                      crc32(vrBits.data(), vrBits.size()));
        path = opt_.cacheDir + file;
    }

    auto sg = std::make_unique<surrogate::ErrorSurrogate>();
    obs::Registry &reg = obs::Registry::global();
    bool cached = !path.empty() && sg->load(path, identity);
    if (cached) {
        inform("loaded cached surrogate %s (AUC %.3f)", path.c_str(),
               sg->heldOutAuc());
        reg.counter(obs::metric::kCacheHits, "",
                    "characterizations served from the stats cache")
            .inc(1);
    } else {
        std::vector<std::pair<double, size_t>> vrPoints;
        for (double vr : opt_.vrLevels)
            vrPoints.emplace_back(vr, pointFor(vr));
        surrogate::CorpusConfig cfg;
        cfg.seed = opt_.seed;
        cfg.opsPerOpPerVr = opt_.isCorpusPerOp;
        inform("training error surrogate (%llu ops/type x %zu VR "
               "levels)...",
               static_cast<unsigned long long>(cfg.opsPerOpPerVr),
               opt_.vrLevels.size());
        obs::Span span("toolflow.surrogate", "toolflow");
        auto t0 = std::chrono::steady_clock::now();
        sg->train(*core_, vrPoints, cfg);
        double ms = std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count();
        reg.histogram(obs::metric::kSurrogateTrainMs,
                      obs::latencyBucketsMs(), "",
                      "wall-clock ms spent training the error "
                      "surrogate")
            .observe(ms);
        inform("surrogate trained: held-out AUC %.3f over %llu "
               "corpus ops (%.0f ms)",
               sg->heldOutAuc(),
               static_cast<unsigned long long>(sg->corpusOps()), ms);
        if (!path.empty())
            sg->save(path, identity);
    }
    // Fractional gauges export in parts-per-million (gauges are
    // integral); see docs/OBSERVABILITY.md.
    reg.gauge(obs::metric::kSurrogateAuc, "",
              "held-out surrogate AUC in parts per million")
        .set(static_cast<int64_t>(sg->heldOutAuc() * 1e6));
    reg.counter(obs::metric::kSurrogateCorpusOps, "",
                "gate-level DTA ops spent building surrogate corpora")
        .inc(cached ? 0 : sg->corpusOps());
    surrogate_ = std::move(sg);
    return *surrogate_;
}

const workloads::Workload &
Toolflow::workload(const std::string &name)
{
    auto it = workloads_.find(name);
    if (it == workloads_.end()) {
        it = workloads_
                 .emplace(name, workloads::buildWorkload(
                                    name, opt_.seed, opt_.workloadScale))
                 .first;
    }
    return it->second;
}

const std::vector<sim::FpTraceEntry> &
Toolflow::trace(const std::string &name)
{
    auto it = traces_.find(name);
    if (it == traces_.end()) {
        const auto &w = workload(name);
        std::vector<sim::FpTraceEntry> tr;
        if (w.threaded) {
            // Threaded workloads trace on the N-core functional
            // simulator; entries merge in the deterministic
            // interleave order, so the trace is a pure function of
            // (workload, cores).
            mc::McFuncSim::Config fcfg;
            fcfg.cores = opt_.mcCores;
            mc::McFuncSim msim(w.program, fcfg);
            msim.setFpTrace(&tr);
            auto mres = msim.run();
            fatal_if(mres.status != mc::McFuncSim::Status::Halted,
                     "workload '%s' did not halt while tracing",
                     name.c_str());
        } else {
            sim::FuncSim sim(w.program);
            sim.setFpTrace(&tr);
            auto res = sim.run();
            fatal_if(res.status != sim::FuncSim::Status::Halted,
                     "workload '%s' did not halt while tracing",
                     name.c_str());
        }
        it = traces_.emplace(name, std::move(tr)).first;
    }
    return it->second;
}

inject::InjectionCampaign &
Toolflow::campaign(const std::string &name)
{
    auto it = campaigns_.find(name);
    if (it == campaigns_.end()) {
        mc::McConfig mcCfg;
        mcCfg.cores = opt_.mcCores;
        mcCfg.quantum = opt_.mcQuantum;
        it = campaigns_
                 .emplace(name,
                          std::make_unique<inject::InjectionCampaign>(
                              workload(name), sim::OooConfig{}, mcCfg))
                 .first;
    }
    return *it->second;
}

} // namespace tea::core
