/**
 * @file
 * The cross-layer toolflow facade (Fig. 2 of the paper).
 *
 * Ties the layers together: builds the gate-level FPU once, registers
 * voltage operating points, runs the model-development phase (DTA
 * characterizations for the DA/IA/WA models, with an on-disk cache so
 * repeated bench invocations do not re-run gate-level simulation), and
 * hands out injection campaigns for the application-evaluation phase.
 */

#ifndef TEA_CORE_TOOLFLOW_HH
#define TEA_CORE_TOOLFLOW_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "fpu/fpu_core.hh"
#include "inject/campaign.hh"
#include "models/error_models.hh"
#include "surrogate/importance.hh"
#include "timing/dta_campaign.hh"
#include "util/threadpool.hh"
#include "util/watchdog.hh"
#include "workloads/workloads.hh"

namespace tea::core {

struct ToolflowOptions
{
    /** Voltage-reduction levels studied (paper: VR15 and VR20). */
    std::vector<double> vrLevels = {circuit::kVR15, circuit::kVR20};
    /** Random ops per instruction type for IA characterization. */
    uint64_t iaCountPerOp = 4000;
    /** Trace ops sampled per workload for WA characterization. */
    uint64_t waMaxOps = 20000;
    /** Benchmark-extracted ops for the DA Monte-Carlo ER estimate. */
    uint64_t daSampleOps = 20000;
    /** Injection runs per (workload, model, VR) cell. */
    int runsPerCell = 60;
    uint64_t seed = 1;
    int workloadScale = 1;
    /** Directory for characterization caches ("" disables caching). */
    std::string cacheDir = "tea_cache";
    /**
     * Worker threads for sharded campaigns (0 = REPRO_THREADS env or
     * hardware concurrency). Results are bit-identical for any value.
     */
    unsigned threads = 0;
    /**
     * Resume interrupted campaigns from their shard journals instead
     * of starting over (REPRO_RESUME=1). Replayed runs are
     * bit-identical to fresh execution, so a resumed grid matches an
     * uninterrupted one exactly.
     */
    bool resume = false;
    /** Per-injection-run wall-clock deadline in ms (<= 0 disables). */
    int64_t runDeadlineMs = 0;
    /** Containment attempts per injection run before EngineFault. */
    int maxRunAttempts = inject::kDefaultRunAttempts;
    /**
     * Adaptive (confidence-driven) campaign sizing: when > 0,
     * characterizations and injection campaigns sample in
     * deterministic rounds until their intervals reach this half-width
     * (REPRO_CI_TARGET). 0 keeps the classic fixed-size campaigns —
     * and with them byte-identical caches, journals, and figure CSVs.
     */
    double ciTarget = 0.0;
    /** Confidence level of adaptive intervals (REPRO_CI_CONF). */
    double ciConf = 0.95;
    /**
     * Cap on adaptive trials per stratum / runs per cell
     * (REPRO_MAX_RUNS; 0 = a per-campaign default).
     */
    uint64_t maxAdaptiveRuns = 0;
    /**
     * Batched-DTA engine for characterization campaigns
     * (REPRO_DTA_BACKEND=levelized|lane|compiled). Results are
     * bit-identical across backends; the knob trades interpretation
     * against compile-once specialized execution.
     */
    circuit::DtaBackend dtaBackend = circuit::DtaBackend::Lane;
    /**
     * Importance-sampled injection (REPRO_IS=1): IA/WA campaign cells
     * plan injections under a surrogate-tilted proposal and estimate
     * AVM with the self-normalized weighted estimator. Off by default:
     * the plain path keeps byte-identical legacy artifacts.
     */
    bool isEnable = false;
    /** Risk tilt strength of the IS proposal (REPRO_IS_BOOST). */
    double isBoost = surrogate::kDefaultBoost;
    /** Proposal floor as a fraction of p (REPRO_IS_FLOOR). */
    double isFloor = surrogate::kDefaultFloor;
    /**
     * Rare-regime guard: cap on an op's tilted expected injection
     * count before the boost is scaled back (REPRO_IS_MAXTILT).
     * Saturated ops stay exactly on the target measure, so IS never
     * degrades a cell that plain Monte Carlo already resolves fast.
     */
    double isMaxTilted = surrogate::kDefaultMaxTilted;
    /** Surrogate corpus: DTA ops per (type, VR) (REPRO_IS_CORPUS). */
    uint64_t isCorpusPerOp = 1500;
    /**
     * Cores simulated for threaded ("-mt") workloads (REPRO_MC_CORES,
     * clamped to [1, isa::kMcMaxCores]). Part of a threaded cell's
     * identity: journals and caches from different core counts never
     * mix. Single-core workloads ignore it.
     */
    unsigned mcCores = 2;
    /** Round-robin quantum in cycles (REPRO_MC_QUANTUM, >= 1). */
    unsigned mcQuantum = 64;

    /** True when confidence-driven campaign sizing is enabled. */
    bool adaptive() const { return ciTarget > 0.0; }
};

/**
 * Read REPRO_RUNS / REPRO_FULL / REPRO_SEED / REPRO_CACHE /
 * REPRO_THREADS / REPRO_RESUME / REPRO_RUN_DEADLINE_MS /
 * REPRO_CI_TARGET / REPRO_CI_CONF / REPRO_MAX_RUNS /
 * REPRO_DTA_BACKEND / REPRO_IS / REPRO_IS_BOOST / REPRO_IS_FLOOR /
 * REPRO_IS_MAXTILT / REPRO_IS_CORPUS / REPRO_MC_CORES /
 * REPRO_MC_QUANTUM overrides. Malformed values are rejected with a
 * warn and the default kept; out-of-range values are clamped — a typo
 * in the environment can slow a reproduction down but never crash or
 * silently skew it.
 */
ToolflowOptions optionsFromEnv();

class Toolflow
{
  public:
    explicit Toolflow(ToolflowOptions opt);
    Toolflow() : Toolflow(optionsFromEnv()) {}

    const ToolflowOptions &options() const { return opt_; }
    fpu::FpuCore &fpuCore() { return *core_; }
    const circuit::VoltageModel &voltageModel() const { return vm_; }
    /** Worker pool shared by every campaign this toolflow runs. */
    ThreadPool &pool() { return *pool_; }
    /** Process-wide cancellation watchdog (SIGINT/SIGTERM). */
    const Watchdog &cancelWatchdog() const { return cancelWatchdog_; }

    /**
     * Build a filesystem-safe cache/journal tag "<prefix>_<name>_n<n>".
     * Hostile characters in `name` are replaced, and long names are
     * shortened to a prefix plus an 8-hex CRC-32 of the original, so
     * tags never exceed a bounded length and two distinct long names
     * cannot silently collide the way a truncating snprintf would.
     */
    static std::string cacheTag(const char *prefix,
                                const std::string &name, uint64_t n);

    /** Operating-point index for a VR fraction (created on demand). */
    size_t pointFor(double vrFrac);

    /**
     * Move a damaged cache file aside to `<path>.bad` (`.bad2`..
     * `.bad9` when earlier evidence already sits there, so the first
     * corrupt capture is never overwritten). Returns false when no
     * quarantine name could be claimed — the caller then regenerates
     * straight over the damaged file, which the atomic cache writers
     * make safe. Public for the robustness tests.
     */
    static bool quarantineCache(const std::string &path);

    // ---- model development phase -----------------------------------
    const timing::CampaignStats &iaStats(double vrFrac);
    const timing::CampaignStats &waStats(const std::string &workload,
                                         double vrFrac);
    /** DA fixed ER: DTA over instructions extracted from all benches. */
    double daErrorRatio(double vrFrac);

    models::DaModel daModel(double vrFrac);
    models::IaModel iaModel(double vrFrac);
    models::WaModel waModel(const std::string &workload, double vrFrac);

    /**
     * The timing-error surrogate for importance-sampled campaigns:
     * trained once per toolflow over all configured VR levels (VR is
     * a feature), cached on disk next to the characterization stats.
     * Deterministic — a pure function of (seed, corpus size, VR
     * levels), independent of thread count and call order.
     */
    const surrogate::ErrorSurrogate &surrogate();

    // ---- workload plumbing ------------------------------------------
    const workloads::Workload &workload(const std::string &name);
    const std::vector<sim::FpTraceEntry> &
    trace(const std::string &workload);
    inject::InjectionCampaign &campaign(const std::string &workload);

  private:
    std::string cachePath(const std::string &tag, double vrFrac) const;
    const timing::CampaignStats &
    characterize(const std::string &tag, double vrFrac,
                 const std::function<timing::CampaignStats(size_t)> &run);

    ToolflowOptions opt_;
    circuit::VoltageModel vm_;
    /** Cancellation-only watchdog passed into every DTA campaign. */
    Watchdog cancelWatchdog_{&CancelToken::processWide(), 0};
    std::unique_ptr<ThreadPool> pool_;
    std::unique_ptr<fpu::FpuCore> core_;
    std::map<int, size_t> points_; ///< key: VR percent x 100
    std::map<std::string, timing::CampaignStats> statsCache_;
    std::map<std::string, workloads::Workload> workloads_;
    std::map<std::string, std::vector<sim::FpTraceEntry>> traces_;
    std::map<std::string, std::unique_ptr<inject::InjectionCampaign>>
        campaigns_;
    std::map<int, double> daEr_;
    std::unique_ptr<surrogate::ErrorSurrogate> surrogate_;
};

} // namespace tea::core

#endif // TEA_CORE_TOOLFLOW_HH
