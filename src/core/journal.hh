/**
 * @file
 * Append-only checkpoint journal for injection-campaign cells.
 *
 * Each completed run is journaled as one CRC-guarded text line as it
 * finishes on a worker thread. If the campaign is interrupted
 * (SIGINT/SIGTERM, crash, power loss), a resumed invocation with the
 * same identity replays the journaled records verbatim and executes
 * only the missing runs — and because run i's randomness is a pure
 * function of the campaign RNG and i, the resumed aggregate is
 * bit-identical to an uninterrupted campaign at any thread count.
 *
 * Torn tails are expected: the journal validates each line's CRC on
 * open and truncates the file back to its longest valid prefix, so a
 * write cut mid-line costs exactly one run, not the whole journal.
 */

#ifndef TEA_CORE_JOURNAL_HH
#define TEA_CORE_JOURNAL_HH

#include <cstdint>
#include <fstream>
#include <mutex>
#include <string>
#include <unordered_map>

#include "inject/campaign.hh"

namespace tea::core {

class ShardJournal
{
  public:
    using RunRecord = inject::InjectionCampaign::RunRecord;

    explicit ShardJournal(std::string path);

    /**
     * Open the journal. With resume set, an existing file whose header
     * identity matches is replayed (corrupt tail truncated); any
     * mismatch — different identity, bad header, no resume requested —
     * starts a fresh journal. Returns the number of replayable records.
     *
     * The identity string must encode everything the records depend on
     * (workload, model, VR, seed, run count...), so a journal can never
     * leak records into a differently-configured campaign.
     */
    size_t open(const std::string &identity, bool resume);

    /** Fill `rec` from the journal if run `idx` already completed. */
    bool tryReplay(uint64_t idx, RunRecord &rec) const;

    /**
     * Durably append one completed run. Thread-safe; flushed per
     * append so an interrupt loses at most the in-flight line.
     */
    void append(uint64_t idx, const RunRecord &rec);

    /**
     * Rewrite the file with its records in run-index order (staged,
     * atomic rename). Appends land in completion order, which varies
     * with the thread pool's scheduling; a completed cell
     * canonicalizes its journal so the on-disk bytes are a pure
     * function of the campaign — identical for any REPRO_THREADS and
     * byte-comparable against a fleet coordinator's merged journal,
     * which is written in index order by construction. The append
     * stream is reopened, so an adaptive top-up can still extend the
     * file afterwards.
     */
    void canonicalize();

    /** Close and delete the journal file (campaign completed). */
    void remove();

    const std::string &path() const { return path_; }
    size_t replayable() const { return records_.size(); }
    /**
     * Every replayable record (fleet shard merge: a coordinator reads
     * each shard journal's records and re-appends them into the
     * canonical per-cell journal in run-index order).
     */
    const std::unordered_map<uint64_t, RunRecord> &records() const
    {
        return records_;
    }

  private:
    std::string path_;
    std::ofstream out_;
    std::mutex mutex_;
    std::unordered_map<uint64_t, RunRecord> records_;
};

} // namespace tea::core

#endif // TEA_CORE_JOURNAL_HH
