#include "core/energy.hh"

#include <algorithm>
#include <cmath>

#include "stats/intervals.hh"

namespace tea::core {

double
powerSavingAt(double vrFrac, const circuit::VoltageModel &vm)
{
    return 1.0 - vm.totalPowerFactor(vm.voltageFor(vrFrac));
}

VoltageGuidance
guideVoltage(const std::map<double, double> &avmPerVr,
             const circuit::VoltageModel &vm)
{
    VoltageGuidance g;
    for (const auto &[vr, avm] : avmPerVr) {
        // NaN marks a level where nothing was classified: unknown, so
        // never safe. The explicit `found` flag keeps "VR = 0 is safe"
        // distinct from "no level qualified".
        if (avm == 0.0 && (!g.found || vr > g.maxSafeVr)) {
            g.maxSafeVr = vr;
            g.found = true;
        }
    }
    g.powerSaving = g.found ? powerSavingAt(g.maxSafeVr, vm) : 0.0;
    return g;
}

VoltageGuidance
guideVoltage(const std::map<double, AvmObservation> &avmPerVr,
             double avmBound, double conf, const circuit::VoltageModel &vm)
{
    VoltageGuidance g;
    for (const auto &[vr, obs] : avmPerVr) {
        if (obs.classified == 0)
            continue; // no evidence at this level
        double ub = stats::upperBound(obs.unsafe, obs.classified, conf);
        if (ub <= avmBound && (!g.found || vr > g.maxSafeVr)) {
            g.maxSafeVr = vr;
            g.found = true;
            g.avmUpperBound = ub;
        }
    }
    g.powerSaving = g.found ? powerSavingAt(g.maxSafeVr, vm) : 0.0;
    return g;
}

PreventionAnalysis
analyzePrevention(const models::ProgramProfile &profile,
                  const models::StatisticalModel &waModel, double vrFrac,
                  double guidedSaving, const circuit::VoltageModel &vm)
{
    // Dynamic fraction of instructions whose type is error-prone at
    // this operating point (those get a doubled clock period).
    uint64_t prone = 0;
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        if (waModel.opStats(static_cast<fpu::FpuOp>(o)).faultyProb > 0.0)
            prone += profile.fpOpCounts[o];
    }
    double frac =
        profile.totalInstructions
            ? static_cast<double>(prone) /
                  static_cast<double>(profile.totalInstructions)
            : 0.0;
    PreventionAnalysis out;
    out.vrFrac = vrFrac;
    out.stretchOverhead = frac; // each stretched op costs ~1 extra cycle
    double power = vm.totalPowerFactor(vm.voltageFor(vrFrac));
    out.energyFactor = power * (1.0 + out.stretchOverhead);
    double saving = 1.0 - out.energyFactor;
    out.extraSavingVsGuided = saving - guidedSaving;
    return out;
}

} // namespace tea::core
