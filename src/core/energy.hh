/**
 * @file
 * Energy/power analysis for AVM-guided voltage selection (Section V.C).
 *
 * Power scales with the supply voltage per the VoltageModel; given the
 * AVM measured at each voltage-reduction level, the guidance picks the
 * deepest level whose AVM is zero (no observed corruption) and reports
 * the power saving. The prevention analysis models a simple timing-
 * error prevention technique — instruction-aware clock stretching for
 * the error-prone FP instruction types — which buys deeper voltage
 * reduction at a small throughput cost (the paper's "up to 20% energy
 * savings when combined with a timing error prevention technique").
 */

#ifndef TEA_CORE_ENERGY_HH
#define TEA_CORE_ENERGY_HH

#include <map>
#include <string>
#include <vector>

#include "circuit/celllib.hh"
#include "models/error_models.hh"

namespace tea::core {

/** Fractional power saving (0..1) of running at a VR level. */
double powerSavingAt(double vrFrac,
                     const circuit::VoltageModel &vm =
                         circuit::VoltageModel{});

struct VoltageGuidance
{
    double maxSafeVr = 0.0;   ///< deepest safe VR level found
    double powerSaving = 0.0; ///< fractional power saving at that VR
    /**
     * True when some studied VR level qualified as safe. Callers must
     * check this instead of `maxSafeVr > 0`: VR = 0 (nominal voltage)
     * is a legitimate safe level, not the absence of an answer.
     */
    bool found = false;
    /**
     * Upper confidence bound on the AVM at maxSafeVr (1 when run
     * counts were not provided — nothing is then known beyond the
     * point estimate).
     */
    double avmUpperBound = 1.0;
};

/**
 * Pick the deepest studied VR level whose AVM is zero.
 * @param avmPerVr map from VR fraction to measured AVM.
 *
 * Point-estimate-only variant: levels whose AVM is NaN (nothing was
 * classified there) are skipped, and the reported avmUpperBound stays
 * at the uninformative 1.
 */
VoltageGuidance guideVoltage(const std::map<double, double> &avmPerVr,
                             const circuit::VoltageModel &vm =
                                 circuit::VoltageModel{});

/** One voltage level's evidence for the CI-aware guidance. */
struct AvmObservation
{
    uint64_t unsafe = 0;     ///< SDC + Crash + Timeout runs
    uint64_t classified = 0; ///< runs with a paper outcome
};

/**
 * CI-aware guidance: pick the deepest VR level whose AVM *upper
 * confidence bound* clears `avmBound` — zero observed corruption out
 * of a handful of runs is not evidence of safety. Zero-event levels
 * use the rule-of-three bound 1-(1-conf)^(1/n); levels with events
 * use the Clopper-Pearson upper limit. Levels with no classified runs
 * never qualify.
 */
VoltageGuidance
guideVoltage(const std::map<double, AvmObservation> &avmPerVr,
             double avmBound, double conf = 0.95,
             const circuit::VoltageModel &vm = circuit::VoltageModel{});

struct PreventionAnalysis
{
    double vrFrac;          ///< VR enabled by prevention
    double stretchOverhead; ///< fractional cycle overhead
    double energyFactor;    ///< energy vs nominal (power x time)
    double extraSavingVsGuided; ///< saving beyond AVM-only guidance
};

/**
 * Model instruction-aware clock stretching: every FP instruction type
 * whose WA-model probability of error at `vrFrac` is non-zero executes
 * with a stretched (doubled) clock, eliminating its timing errors; all
 * other instructions run at the scaled clock. The throughput overhead
 * is the dynamic fraction of stretched instructions.
 */
PreventionAnalysis
analyzePrevention(const models::ProgramProfile &profile,
                  const models::StatisticalModel &waModel, double vrFrac,
                  double guidedSaving,
                  const circuit::VoltageModel &vm =
                      circuit::VoltageModel{});

} // namespace tea::core

#endif // TEA_CORE_ENERGY_HH
