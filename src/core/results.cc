#include "core/results.hh"

#include <cmath>
#include <fstream>
#include <sstream>

#include "util/logging.hh"

namespace tea::core {

using inject::CampaignResult;
using models::ModelKind;

const CampaignResult *
EvaluationGrid::find(const std::string &workload, ModelKind model,
                     double vrFrac) const
{
    for (const auto &cell : cells) {
        if (cell.workload == workload && cell.model == model &&
            std::fabs(cell.vrFrac - vrFrac) < 1e-9)
            return &cell.result;
    }
    return nullptr;
}

void
saveGrid(const std::string &path, const EvaluationGrid &grid)
{
    std::ofstream out(path);
    fatal_if(!out, "cannot write '%s'", path.c_str());
    out << "workload,model,vr,runs,masked,sdc,crash,timeout,"
           "injected,committed,wrongpath\n";
    for (const auto &c : grid.cells) {
        out << c.workload << "," << static_cast<int>(c.model) << ","
            << c.vrFrac << "," << c.result.runs << "," << c.result.masked
            << "," << c.result.sdc << "," << c.result.crash << ","
            << c.result.timeout << "," << c.result.injectedErrors << ","
            << c.result.committedInstructions << ","
            << c.result.wrongPathInjections << "\n";
    }
}

std::optional<EvaluationGrid>
loadGrid(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::string header;
    std::getline(in, header);
    if (header.rfind("workload,model,vr", 0) != 0)
        return std::nullopt;
    EvaluationGrid grid;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        CampaignCell cell;
        std::string tok;
        int model;
        auto field = [&](auto &dst) {
            if (!std::getline(ls, tok, ','))
                return false;
            std::istringstream(tok) >> dst;
            return true;
        };
        if (!std::getline(ls, cell.workload, ','))
            return std::nullopt;
        if (!field(model) || !field(cell.vrFrac) ||
            !field(cell.result.runs) || !field(cell.result.masked) ||
            !field(cell.result.sdc) || !field(cell.result.crash) ||
            !field(cell.result.timeout) ||
            !field(cell.result.injectedErrors) ||
            !field(cell.result.committedInstructions) ||
            !field(cell.result.wrongPathInjections))
            return std::nullopt;
        cell.model = static_cast<ModelKind>(model);
        cell.result.workload = cell.workload;
        cell.result.model = models::modelKindName(cell.model);
        grid.cells.push_back(std::move(cell));
    }
    return grid.cells.empty() ? std::nullopt
                              : std::make_optional(std::move(grid));
}

EvaluationGrid
runEvaluationGrid(Toolflow &tf, bool useCache)
{
    const auto &opt = tf.options();
    std::string cachePath;
    if (useCache && !opt.cacheDir.empty()) {
        char buf[96];
        // "_p1" = parallel-campaign algorithm revision (see
        // Toolflow::cachePath); older grids used different Rng streams.
        std::snprintf(buf, sizeof(buf), "%s/grid_r%d_s%llu_x%d_p1.csv",
                      opt.cacheDir.c_str(), opt.runsPerCell,
                      static_cast<unsigned long long>(opt.seed),
                      opt.workloadScale);
        cachePath = buf;
        if (auto grid = loadGrid(cachePath)) {
            inform("loaded cached evaluation grid %s", cachePath.c_str());
            return *grid;
        }
    }

    EvaluationGrid grid;
    Rng rng(opt.seed ^ 0xe1a1ULL);
    for (const auto &name : workloads::workloadNames()) {
        auto &campaign = tf.campaign(name);
        for (double vr : opt.vrLevels) {
            struct ModelRun
            {
                ModelKind kind;
                std::unique_ptr<models::ErrorModel> model;
            };
            std::vector<ModelRun> runs;
            runs.push_back({ModelKind::DA,
                            std::make_unique<models::DaModel>(
                                tf.daModel(vr))});
            runs.push_back({ModelKind::IA,
                            std::make_unique<models::IaModel>(
                                tf.iaModel(vr))});
            runs.push_back({ModelKind::WA,
                            std::make_unique<models::WaModel>(
                                tf.waModel(name, vr))});
            for (auto &mr : runs) {
                inform("campaign: %s %s VR%.0f (%d runs)...",
                       name.c_str(), models::modelKindName(mr.kind),
                       vr * 100, opt.runsPerCell);
                Rng cellRng = rng.split();
                CampaignCell cell;
                cell.workload = name;
                cell.model = mr.kind;
                cell.vrFrac = vr;
                cell.result = campaign.run(*mr.model, opt.runsPerCell,
                                           cellRng, &tf.pool());
                grid.cells.push_back(std::move(cell));
            }
        }
    }
    if (!cachePath.empty())
        saveGrid(cachePath, grid);
    return grid;
}

} // namespace tea::core
