#include "core/results.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/journal.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"
#include "surrogate/importance.hh"
#include "util/fsatomic.hh"
#include "util/logging.hh"

namespace tea::core {

using inject::CampaignResult;
using models::ModelKind;

const CampaignResult *
EvaluationGrid::find(const std::string &workload, ModelKind model,
                     double vrFrac) const
{
    for (const auto &cell : cells) {
        if (cell.workload == workload && cell.model == model &&
            std::fabs(cell.vrFrac - vrFrac) < 1e-9)
            return &cell.result;
    }
    return nullptr;
}

void
saveGrid(const std::string &path, const EvaluationGrid &grid)
{
    std::ostringstream out;
    out << "workload,model,vr,runs,masked,sdc,crash,timeout,"
           "enginefault,retries,injected,committed,wrongpath,"
           "weighted,wsum,wunsafe,wsqsum,wusqsum,"
           "mcchm,mcscs,mcccs,mcsync,mcdead\n";
    for (const auto &c : grid.cells) {
        // %.17g round-trips any double exactly: reweighted AVM from a
        // reloaded grid is bit-identical to the freshly computed one.
        char wbuf[128];
        std::snprintf(wbuf, sizeof(wbuf), "%d,%.17g,%.17g,%.17g,%.17g",
                      c.result.weightedModel ? 1 : 0, c.result.weightSum,
                      c.result.weightUnsafe, c.result.weightSqSum,
                      c.result.weightUnsafeSqSum);
        out << c.workload << "," << static_cast<int>(c.model) << ","
            << c.vrFrac << "," << c.result.runs << "," << c.result.masked
            << "," << c.result.sdc << "," << c.result.crash << ","
            << c.result.timeout << "," << c.result.engineFault << ","
            << c.result.retries << "," << c.result.injectedErrors << ","
            << c.result.committedInstructions << ","
            << c.result.wrongPathInjections << "," << wbuf << ","
            << c.result.mcCoherenceMasked << ","
            << c.result.mcSdcSameCore << "," << c.result.mcSdcCrossCore
            << "," << c.result.mcSyncCrash << ","
            << c.result.mcDeadlock << "\n";
    }
    // Atomic publication: a reader (or a crash) never sees a torn grid.
    fatal_if(!atomicWriteFile(path, out.str()), "cannot write '%s'",
             path.c_str());
}

std::optional<EvaluationGrid>
loadGrid(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::string header;
    std::getline(in, header);
    if (header.rfind("workload,model,vr", 0) != 0)
        return std::nullopt;
    EvaluationGrid grid;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        CampaignCell cell;
        std::string tok;
        int model;
        auto field = [&](auto &dst) {
            if (!std::getline(ls, tok, ','))
                return false;
            std::istringstream(tok) >> dst;
            return true;
        };
        if (!std::getline(ls, cell.workload, ','))
            return std::nullopt;
        int weighted = 0;
        if (!field(model) || !field(cell.vrFrac) ||
            !field(cell.result.runs) || !field(cell.result.masked) ||
            !field(cell.result.sdc) || !field(cell.result.crash) ||
            !field(cell.result.timeout) ||
            !field(cell.result.engineFault) ||
            !field(cell.result.retries) ||
            !field(cell.result.injectedErrors) ||
            !field(cell.result.committedInstructions) ||
            !field(cell.result.wrongPathInjections) ||
            !field(weighted) || !field(cell.result.weightSum) ||
            !field(cell.result.weightUnsafe) ||
            !field(cell.result.weightSqSum) ||
            !field(cell.result.weightUnsafeSqSum) ||
            !field(cell.result.mcCoherenceMasked) ||
            !field(cell.result.mcSdcSameCore) ||
            !field(cell.result.mcSdcCrossCore) ||
            !field(cell.result.mcSyncCrash) ||
            !field(cell.result.mcDeadlock))
            return std::nullopt;
        cell.result.weightedModel = weighted != 0;
        cell.model = static_cast<ModelKind>(model);
        cell.result.workload = cell.workload;
        cell.result.model = models::modelKindName(cell.model);
        grid.cells.push_back(std::move(cell));
    }
    return grid.cells.empty() ? std::nullopt
                              : std::make_optional(std::move(grid));
}

int
cellRunCap(const ToolflowOptions &opt)
{
    if (opt.adaptive() && opt.maxAdaptiveRuns > 0)
        return static_cast<int>(
            std::min<uint64_t>(opt.maxAdaptiveRuns, 1000000));
    return opt.runsPerCell;
}

namespace {

/**
 * Extra path/identity component in adaptive mode. Empty when adaptive
 * sizing is off, so every classic cache, journal, and grid file name
 * stays byte-for-byte what it was before adaptive mode existed.
 */
std::string
adaptiveSuffix(const ToolflowOptions &opt)
{
    if (!opt.adaptive())
        return "";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "_a%gc%g", opt.ciTarget,
                  opt.ciConf);
    return buf;
}

/**
 * Extra path/identity component for importance-sampled campaigns.
 * IS changes the proposal distribution (different RNG consumption,
 * different per-run weights), so its grids and journals must never
 * share a file with plain campaigns of the same geometry. Empty when
 * IS is off.
 */
std::string
isSuffix(const ToolflowOptions &opt)
{
    if (!opt.isEnable)
        return "";
    char buf[96];
    std::snprintf(buf, sizeof(buf), "_isb%gf%gm%gn%llu", opt.isBoost,
                  opt.isFloor, opt.isMaxTilted,
                  static_cast<unsigned long long>(opt.isCorpusPerOp));
    return buf;
}

/**
 * Extra path/identity component for threaded ("-mt") workloads: the
 * multi-core geometry changes golden references, plans, and outcomes,
 * so cells from different core counts or quanta must never share a
 * journal or manifest. Empty for single-core workloads — their file
 * names are untouched by the multi-core subsystem.
 */
std::string
mcSuffix(const ToolflowOptions &opt, const std::string &workload)
{
    if (!workloads::isThreadedWorkload(workload))
        return "";
    char buf[48];
    std::snprintf(buf, sizeof(buf), "_c%uq%u", opt.mcCores,
                  opt.mcQuantum);
    return buf;
}

/** The workloads a spec covers (empty list = every workload). */
std::vector<std::string>
specWorkloads(const GridSpec &spec)
{
    if (!spec.workloads.empty())
        return spec.workloads;
    return workloads::workloadNames();
}

} // namespace

std::string
gridCachePath(const ToolflowOptions &opt)
{
    if (opt.cacheDir.empty())
        return "";
    char buf[160];
    // "_p5" = grid-file revision: p2 added the enginefault/retries
    // columns; p3 invalidated grids derived from float-precision
    // arrival times; p4 added the weighted-estimator columns
    // (weighted, wsum, wunsafe, wsqsum); p5 added the multi-core
    // refinement columns and the mc geometry in the name (a grid may
    // contain threaded cells, whose results depend on it).
    std::snprintf(buf, sizeof(buf), "grid_r%d_s%llu_x%d%s%s_c%uq%u_p5.csv",
                  cellRunCap(opt),
                  static_cast<unsigned long long>(opt.seed),
                  opt.workloadScale, adaptiveSuffix(opt).c_str(),
                  isSuffix(opt).c_str(), opt.mcCores, opt.mcQuantum);
    return opt.cacheDir + "/" + buf;
}

std::string
cellJournalPath(const ToolflowOptions &opt, const std::string &workload,
                ModelKind kind, double vr)
{
    char buf[160];
    // "_p5" = journal revision: record lines now carry the multi-core
    // outcome refinement (core/journal.cc, tea-journal-v3); p4 added
    // the run's exact log likelihood-ratio weight.
    std::snprintf(buf, sizeof(buf), "_m%d_vr%02d_s%llu_x%d%s%s%s_p5.jnl",
                  static_cast<int>(kind),
                  static_cast<int>(vr * 100 + 0.5),
                  static_cast<unsigned long long>(opt.seed),
                  opt.workloadScale, adaptiveSuffix(opt).c_str(),
                  isSuffix(opt).c_str(),
                  mcSuffix(opt, workload).c_str());
    return opt.cacheDir + "/" +
           Toolflow::cacheTag(
               "jnl", workload,
               static_cast<uint64_t>(cellRunCap(opt))) +
           buf;
}

std::string
cellManifestPath(const ToolflowOptions &opt, const std::string &workload,
                 ModelKind kind, double vr)
{
    char buf[160];
    std::snprintf(buf, sizeof(buf), "_m%d_vr%02d_s%llu_x%d%s%s%s.json",
                  static_cast<int>(kind),
                  static_cast<int>(vr * 100 + 0.5),
                  static_cast<unsigned long long>(opt.seed),
                  opt.workloadScale, adaptiveSuffix(opt).c_str(),
                  isSuffix(opt).c_str(),
                  mcSuffix(opt, workload).c_str());
    return opt.cacheDir + "/" +
           Toolflow::cacheTag(
               "mft", workload,
               static_cast<uint64_t>(cellRunCap(opt))) +
           buf;
}

std::string
cellIdentity(const ToolflowOptions &opt, const std::string &workload,
             const models::ErrorModel &model, double vr)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "workload=%s model=%s vr=%.4f runs=%d seed=%llu "
                  "scale=%d",
                  workload.c_str(), model.describe().c_str(), vr,
                  cellRunCap(opt),
                  static_cast<unsigned long long>(opt.seed),
                  opt.workloadScale);
    std::string id = buf;
    if (workloads::isThreadedWorkload(workload)) {
        // A threaded cell's runs depend on the mc geometry; journals
        // from a different one must not replay into this cell.
        std::snprintf(buf, sizeof(buf), " cores=%u quantum=%u",
                      opt.mcCores, opt.mcQuantum);
        id += buf;
    }
    if (opt.adaptive()) {
        // Journaled adaptive prefixes are only replayable into a
        // campaign with the same stopping rule.
        std::snprintf(buf, sizeof(buf), " ci=%g conf=%g", opt.ciTarget,
                      opt.ciConf);
        id += buf;
    }
    return id;
}

std::vector<CellPlan>
planEvaluationGrid(const ToolflowOptions &opt, const GridSpec &spec)
{
    // One rng.split() per cell, in exactly the order the classic
    // sequential loop consumed them — the plan is a transcript of that
    // loop's randomness, safe to execute in any process, any order.
    Rng rng(opt.seed ^ 0xe1a1ULL);
    std::vector<CellPlan> plan;
    const ModelKind kinds[] = {ModelKind::DA, ModelKind::IA,
                               ModelKind::WA};
    for (const auto &name : specWorkloads(spec)) {
        for (double vr : opt.vrLevels) {
            for (ModelKind kind : kinds) {
                CellPlan cell;
                cell.index = plan.size();
                cell.workload = name;
                cell.model = kind;
                cell.vrFrac = vr;
                cell.runCap = cellRunCap(opt);
                cell.rngState = rng.split().state();
                plan.push_back(std::move(cell));
            }
        }
    }
    return plan;
}

std::unique_ptr<models::ErrorModel>
cellModel(Toolflow &tf, const CellPlan &plan)
{
    const auto &opt = tf.options();
    // IS tilts per-site probabilities by operand risk, which only the
    // statistical (IA/WA) models have: the DA model injects uniformly
    // into any destination register, so it runs plain even with
    // REPRO_IS=1.
    auto importance =
        [&](const models::StatisticalModel &base)
        -> std::unique_ptr<models::ErrorModel> {
        return std::make_unique<surrogate::ImportanceModel>(
            base, tf.surrogate(), tf.trace(plan.workload), plan.vrFrac,
            opt.isBoost, opt.isFloor, opt.isMaxTilted);
    };
    switch (plan.model) {
      case ModelKind::DA:
        return std::make_unique<models::DaModel>(
            tf.daModel(plan.vrFrac));
      case ModelKind::IA: {
        auto base = tf.iaModel(plan.vrFrac);
        if (opt.isEnable)
            return importance(base);
        return std::make_unique<models::IaModel>(std::move(base));
      }
      case ModelKind::WA: {
        auto base = tf.waModel(plan.workload, plan.vrFrac);
        if (opt.isEnable)
            return importance(base);
        return std::make_unique<models::WaModel>(std::move(base));
      }
    }
    fatal("unknown model kind %d", static_cast<int>(plan.model));
    return nullptr;
}

CampaignCell
runGridCell(Toolflow &tf, const CellPlan &plan,
            const std::string &gridCsvPath,
            const std::function<
                void(uint64_t,
                     const inject::InjectionCampaign::RunRecord &)>
                &onFreshRecord)
{
    const auto &opt = tf.options();
    const CancelToken &cancel = CancelToken::processWide();
    auto &campaign = tf.campaign(plan.workload);
    auto model = cellModel(tf, plan);

    inform("campaign: %s %s VR%.0f (%d runs%s)...",
           plan.workload.c_str(), models::modelKindName(plan.model),
           plan.vrFrac * 100, plan.runCap,
           opt.adaptive() ? " max, adaptive" : "");
    Rng cellRng = Rng::fromState(plan.rngState);

    inject::InjectionCampaign::RunOptions ro;
    ro.pool = &tf.pool();
    ro.cancel = &cancel;
    ro.runDeadlineMs = opt.runDeadlineMs;
    ro.maxAttempts = opt.maxRunAttempts;
    ro.ciTarget = opt.ciTarget;
    ro.ciConf = opt.ciConf;
    std::unique_ptr<ShardJournal> journal;
    size_t replayable = 0;
    if (!opt.cacheDir.empty()) {
        journal = std::make_unique<ShardJournal>(cellJournalPath(
            opt, plan.workload, plan.model, plan.vrFrac));
        replayable = journal->open(
            cellIdentity(opt, plan.workload, *model, plan.vrFrac),
            opt.resume);
        if (replayable > 0)
            inform("resuming %s %s VR%.0f: %zu/%d runs journaled",
                   plan.workload.c_str(),
                   models::modelKindName(plan.model), plan.vrFrac * 100,
                   replayable, plan.runCap);
        ShardJournal *j = journal.get();
        ro.replay = [j](uint64_t i,
                        inject::InjectionCampaign::RunRecord &rec) {
            return j->tryReplay(i, rec);
        };
        ro.onComplete =
            [j, &onFreshRecord](
                uint64_t i,
                const inject::InjectionCampaign::RunRecord &rec) {
                j->append(i, rec);
                if (onFreshRecord)
                    onFreshRecord(i, rec);
            };
    } else if (onFreshRecord) {
        ro.onComplete = onFreshRecord;
    }

    CampaignCell cell;
    cell.workload = plan.workload;
    cell.model = plan.model;
    cell.vrFrac = plan.vrFrac;
    {
        obs::Span cellSpan(plan.workload + "/" +
                               models::modelKindName(plan.model),
                           "grid",
                           static_cast<int64_t>(plan.vrFrac * 100 + 0.5));
        cell.result =
            campaign.run(*model, plan.runCap, cellRng, ro);
    }
    if (journal && !cell.result.interrupted)
        journal->canonicalize();
    obs::Registry::global()
        .counter(obs::metric::kCampaignCells, "",
                 "evaluation-grid cells executed")
        .inc(1);
    if (!opt.cacheDir.empty()) {
        obs::RunManifest m;
        m.workload = plan.workload;
        m.model = models::modelKindName(plan.model);
        m.modelDetail = model->describe();
        m.vrFrac = plan.vrFrac;
        m.seed = opt.seed;
        m.runsPerCell = plan.runCap;
        m.workloadScale = opt.workloadScale;
        m.threads = tf.pool().numThreads();
        m.identity =
            cellIdentity(opt, plan.workload, *model, plan.vrFrac);
        m.journalPath =
            cellJournalPath(opt, plan.workload, plan.model, plan.vrFrac);
        m.gridCsvPath = gridCsvPath;
        m.runs = cell.result.runs;
        m.masked = cell.result.masked;
        m.sdc = cell.result.sdc;
        m.crash = cell.result.crash;
        m.timeout = cell.result.timeout;
        m.engineFault = cell.result.engineFault;
        m.retries = cell.result.retries;
        m.replayedRuns = replayable;
        m.injectedErrors = cell.result.injectedErrors;
        m.committedInstructions = cell.result.committedInstructions;
        m.interrupted = cell.result.interrupted;
        std::string mpath = cellManifestPath(opt, plan.workload,
                                             plan.model, plan.vrFrac);
        if (obs::writeRunManifest(mpath, std::move(m)))
            obs::Registry::global()
                .counter(obs::metric::kManifestsWritten, "",
                         "per-cell run manifests written")
                .inc(1);
        else
            logWarn("cannot write run manifest '%s'", mpath.c_str());
    }
    return cell;
}

EvaluationGrid
runEvaluationGrid(Toolflow &tf, bool useCache)
{
    GridSpec spec;
    spec.useCache = useCache;
    return runEvaluationGrid(tf, spec);
}

EvaluationGrid
runEvaluationGrid(Toolflow &tf, const GridSpec &spec)
{
    const auto &opt = tf.options();
    std::string cachePath;
    if (spec.useCache && !opt.cacheDir.empty()) {
        cachePath = gridCachePath(opt);
        if (auto grid = loadGrid(cachePath)) {
            inform("loaded cached evaluation grid %s",
                   cachePath.c_str());
            return *grid;
        }
    }

    obs::Span gridSpan("toolflow.grid", "toolflow");
    EvaluationGrid grid;
    std::vector<std::string> journalPaths;
    for (const CellPlan &plan : planEvaluationGrid(opt, spec)) {
        if (spec.stopFlag &&
            spec.stopFlag->load(std::memory_order_relaxed)) {
            grid.interrupted = true;
            break;
        }
        CampaignCell cell = runGridCell(tf, plan, cachePath);
        if (!opt.cacheDir.empty())
            journalPaths.push_back(cellJournalPath(
                opt, plan.workload, plan.model, plan.vrFrac));
        if (cell.result.interrupted) {
            // Partial cell: its completed runs are safely in the
            // journal; the aggregate is not comparable and is
            // reported, not recorded.
            inform("interrupted during %s %s VR%.0f after %llu/%d runs "
                   "(masked=%llu sdc=%llu crash=%llu timeout=%llu "
                   "enginefault=%llu)",
                   plan.workload.c_str(),
                   models::modelKindName(plan.model), plan.vrFrac * 100,
                   static_cast<unsigned long long>(cell.result.runs),
                   plan.runCap,
                   static_cast<unsigned long long>(cell.result.masked),
                   static_cast<unsigned long long>(cell.result.sdc),
                   static_cast<unsigned long long>(cell.result.crash),
                   static_cast<unsigned long long>(cell.result.timeout),
                   static_cast<unsigned long long>(
                       cell.result.engineFault));
            grid.interrupted = true;
            break;
        }
        grid.cells.push_back(std::move(cell));
        if (spec.onCell)
            spec.onCell(grid.cells.back());
    }
    if (grid.interrupted) {
        inform("evaluation grid interrupted with %zu cell(s) complete; "
               "rerun with REPRO_RESUME=1 to pick up where it stopped",
               grid.cells.size());
        return grid;
    }
    if (!cachePath.empty())
        saveGrid(cachePath, grid);
    // The grid is durably cached (or caching is off and the journals
    // have no future): the per-cell journals have served their purpose.
    for (const auto &p : journalPaths)
        ShardJournal(p).remove();
    return grid;
}

} // namespace tea::core
