#include "core/results.hh"

#include <algorithm>
#include <cmath>
#include <fstream>
#include <memory>
#include <sstream>

#include "core/journal.hh"
#include "obs/manifest.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"
#include "util/logging.hh"

namespace tea::core {

using inject::CampaignResult;
using models::ModelKind;

const CampaignResult *
EvaluationGrid::find(const std::string &workload, ModelKind model,
                     double vrFrac) const
{
    for (const auto &cell : cells) {
        if (cell.workload == workload && cell.model == model &&
            std::fabs(cell.vrFrac - vrFrac) < 1e-9)
            return &cell.result;
    }
    return nullptr;
}

void
saveGrid(const std::string &path, const EvaluationGrid &grid)
{
    std::ofstream out(path);
    fatal_if(!out, "cannot write '%s'", path.c_str());
    out << "workload,model,vr,runs,masked,sdc,crash,timeout,"
           "enginefault,retries,injected,committed,wrongpath\n";
    for (const auto &c : grid.cells) {
        out << c.workload << "," << static_cast<int>(c.model) << ","
            << c.vrFrac << "," << c.result.runs << "," << c.result.masked
            << "," << c.result.sdc << "," << c.result.crash << ","
            << c.result.timeout << "," << c.result.engineFault << ","
            << c.result.retries << "," << c.result.injectedErrors << ","
            << c.result.committedInstructions << ","
            << c.result.wrongPathInjections << "\n";
    }
}

std::optional<EvaluationGrid>
loadGrid(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::string header;
    std::getline(in, header);
    if (header.rfind("workload,model,vr", 0) != 0)
        return std::nullopt;
    EvaluationGrid grid;
    std::string line;
    while (std::getline(in, line)) {
        std::istringstream ls(line);
        CampaignCell cell;
        std::string tok;
        int model;
        auto field = [&](auto &dst) {
            if (!std::getline(ls, tok, ','))
                return false;
            std::istringstream(tok) >> dst;
            return true;
        };
        if (!std::getline(ls, cell.workload, ','))
            return std::nullopt;
        if (!field(model) || !field(cell.vrFrac) ||
            !field(cell.result.runs) || !field(cell.result.masked) ||
            !field(cell.result.sdc) || !field(cell.result.crash) ||
            !field(cell.result.timeout) ||
            !field(cell.result.engineFault) ||
            !field(cell.result.retries) ||
            !field(cell.result.injectedErrors) ||
            !field(cell.result.committedInstructions) ||
            !field(cell.result.wrongPathInjections))
            return std::nullopt;
        cell.model = static_cast<ModelKind>(model);
        cell.result.workload = cell.workload;
        cell.result.model = models::modelKindName(cell.model);
        grid.cells.push_back(std::move(cell));
    }
    return grid.cells.empty() ? std::nullopt
                              : std::make_optional(std::move(grid));
}

namespace {

/**
 * Injection runs per cell: the fixed count, or — in adaptive mode —
 * the cap the round loop may stop short of (REPRO_MAX_RUNS override).
 */
int
cellRunCap(const ToolflowOptions &opt)
{
    if (opt.adaptive() && opt.maxAdaptiveRuns > 0)
        return static_cast<int>(
            std::min<uint64_t>(opt.maxAdaptiveRuns, 1000000));
    return opt.runsPerCell;
}

/**
 * Extra path/identity component in adaptive mode. Empty when adaptive
 * sizing is off, so every classic cache, journal, and grid file name
 * stays byte-for-byte what it was before adaptive mode existed.
 */
std::string
adaptiveSuffix(const ToolflowOptions &opt)
{
    if (!opt.adaptive())
        return "";
    char buf[64];
    std::snprintf(buf, sizeof(buf), "_a%gc%g", opt.ciTarget,
                  opt.ciConf);
    return buf;
}

/** Journal file path for one grid cell (unique per configuration). */
std::string
cellJournalPath(const ToolflowOptions &opt, const std::string &workload,
                ModelKind kind, double vr)
{
    char buf[80];
    std::snprintf(buf, sizeof(buf), "_m%d_vr%02d_s%llu_x%d%s_p3.jnl",
                  static_cast<int>(kind),
                  static_cast<int>(vr * 100 + 0.5),
                  static_cast<unsigned long long>(opt.seed),
                  opt.workloadScale, adaptiveSuffix(opt).c_str());
    return opt.cacheDir + "/" +
           Toolflow::cacheTag(
               "jnl", workload,
               static_cast<uint64_t>(cellRunCap(opt))) +
           buf;
}

/** Manifest file path for one grid cell (mirrors cellJournalPath). */
std::string
cellManifestPath(const ToolflowOptions &opt, const std::string &workload,
                 ModelKind kind, double vr)
{
    char buf[80];
    std::snprintf(buf, sizeof(buf), "_m%d_vr%02d_s%llu_x%d%s.json",
                  static_cast<int>(kind),
                  static_cast<int>(vr * 100 + 0.5),
                  static_cast<unsigned long long>(opt.seed),
                  opt.workloadScale, adaptiveSuffix(opt).c_str());
    return opt.cacheDir + "/" +
           Toolflow::cacheTag(
               "mft", workload,
               static_cast<uint64_t>(cellRunCap(opt))) +
           buf;
}

/** Everything a cell's journaled records depend on, for the header. */
std::string
cellIdentity(const ToolflowOptions &opt, const std::string &workload,
             const models::ErrorModel &model, double vr)
{
    char buf[256];
    std::snprintf(buf, sizeof(buf),
                  "workload=%s model=%s vr=%.4f runs=%d seed=%llu "
                  "scale=%d",
                  workload.c_str(), model.describe().c_str(), vr,
                  cellRunCap(opt),
                  static_cast<unsigned long long>(opt.seed),
                  opt.workloadScale);
    std::string id = buf;
    if (opt.adaptive()) {
        // Journaled adaptive prefixes are only replayable into a
        // campaign with the same stopping rule.
        std::snprintf(buf, sizeof(buf), " ci=%g conf=%g", opt.ciTarget,
                      opt.ciConf);
        id += buf;
    }
    return id;
}

} // namespace

EvaluationGrid
runEvaluationGrid(Toolflow &tf, bool useCache)
{
    const auto &opt = tf.options();
    std::string cachePath;
    if (useCache && !opt.cacheDir.empty()) {
        char buf[96];
        // "_p3" = grid-file revision: p2 added the enginefault/retries
        // columns; p3 invalidates grids derived from float-precision
        // arrival times (the levelized engine now accumulates in
        // double, matching the event-driven reference).
        std::snprintf(buf, sizeof(buf),
                      "%s/grid_r%d_s%llu_x%d%s_p3.csv",
                      opt.cacheDir.c_str(), cellRunCap(opt),
                      static_cast<unsigned long long>(opt.seed),
                      opt.workloadScale, adaptiveSuffix(opt).c_str());
        cachePath = buf;
        if (auto grid = loadGrid(cachePath)) {
            inform("loaded cached evaluation grid %s", cachePath.c_str());
            return *grid;
        }
    }

    const CancelToken &cancel = CancelToken::processWide();
    obs::Span gridSpan("toolflow.grid", "toolflow");
    std::vector<std::unique_ptr<ShardJournal>> journals;
    EvaluationGrid grid;
    bool interrupted = false;
    Rng rng(opt.seed ^ 0xe1a1ULL);
    for (const auto &name : workloads::workloadNames()) {
        if (interrupted)
            break;
        auto &campaign = tf.campaign(name);
        for (double vr : opt.vrLevels) {
            if (interrupted)
                break;
            struct ModelRun
            {
                ModelKind kind;
                std::unique_ptr<models::ErrorModel> model;
            };
            std::vector<ModelRun> runs;
            runs.push_back({ModelKind::DA,
                            std::make_unique<models::DaModel>(
                                tf.daModel(vr))});
            runs.push_back({ModelKind::IA,
                            std::make_unique<models::IaModel>(
                                tf.iaModel(vr))});
            runs.push_back({ModelKind::WA,
                            std::make_unique<models::WaModel>(
                                tf.waModel(name, vr))});
            for (auto &mr : runs) {
                inform("campaign: %s %s VR%.0f (%d runs%s)...",
                       name.c_str(), models::modelKindName(mr.kind),
                       vr * 100, cellRunCap(opt),
                       opt.adaptive() ? " max, adaptive" : "");
                Rng cellRng = rng.split();

                inject::InjectionCampaign::RunOptions ro;
                ro.pool = &tf.pool();
                ro.cancel = &cancel;
                ro.runDeadlineMs = opt.runDeadlineMs;
                ro.maxAttempts = opt.maxRunAttempts;
                ro.ciTarget = opt.ciTarget;
                ro.ciConf = opt.ciConf;
                ShardJournal *journal = nullptr;
                size_t replayable = 0;
                if (!opt.cacheDir.empty()) {
                    journals.push_back(std::make_unique<ShardJournal>(
                        cellJournalPath(opt, name, mr.kind, vr)));
                    journal = journals.back().get();
                    replayable = journal->open(
                        cellIdentity(opt, name, *mr.model, vr),
                        opt.resume);
                    if (replayable > 0)
                        inform("resuming %s %s VR%.0f: %zu/%d runs "
                               "journaled",
                               name.c_str(),
                               models::modelKindName(mr.kind), vr * 100,
                               replayable, cellRunCap(opt));
                    ro.replay =
                        [journal](uint64_t i,
                                  inject::InjectionCampaign::RunRecord
                                      &rec) {
                            return journal->tryReplay(i, rec);
                        };
                    ro.onComplete =
                        [journal](uint64_t i,
                                  const inject::InjectionCampaign::
                                      RunRecord &rec) {
                            journal->append(i, rec);
                        };
                }

                CampaignCell cell;
                cell.workload = name;
                cell.model = mr.kind;
                cell.vrFrac = vr;
                {
                    obs::Span cellSpan(
                        name + "/" + models::modelKindName(mr.kind),
                        "grid",
                        static_cast<int64_t>(vr * 100 + 0.5));
                    cell.result = campaign.run(*mr.model,
                                               cellRunCap(opt),
                                               cellRng, ro);
                }
                obs::Registry::global()
                    .counter(obs::metric::kCampaignCells, "",
                             "evaluation-grid cells executed")
                    .inc(1);
                if (!opt.cacheDir.empty()) {
                    obs::RunManifest m;
                    m.workload = name;
                    m.model = models::modelKindName(mr.kind);
                    m.modelDetail = mr.model->describe();
                    m.vrFrac = vr;
                    m.seed = opt.seed;
                    m.runsPerCell = cellRunCap(opt);
                    m.workloadScale = opt.workloadScale;
                    m.threads = tf.pool().numThreads();
                    m.identity = cellIdentity(opt, name, *mr.model, vr);
                    m.journalPath =
                        cellJournalPath(opt, name, mr.kind, vr);
                    m.gridCsvPath = cachePath;
                    m.runs = cell.result.runs;
                    m.masked = cell.result.masked;
                    m.sdc = cell.result.sdc;
                    m.crash = cell.result.crash;
                    m.timeout = cell.result.timeout;
                    m.engineFault = cell.result.engineFault;
                    m.retries = cell.result.retries;
                    m.replayedRuns = replayable;
                    m.injectedErrors = cell.result.injectedErrors;
                    m.committedInstructions =
                        cell.result.committedInstructions;
                    m.interrupted = cell.result.interrupted;
                    std::string mpath =
                        cellManifestPath(opt, name, mr.kind, vr);
                    if (obs::writeRunManifest(mpath, std::move(m)))
                        obs::Registry::global()
                            .counter(obs::metric::kManifestsWritten, "",
                                     "per-cell run manifests written")
                            .inc(1);
                    else
                        logWarn("cannot write run manifest '%s'",
                                mpath.c_str());
                }
                if (cell.result.interrupted) {
                    // Partial cell: its completed runs are safely in
                    // the journal; the aggregate is not comparable and
                    // is reported, not recorded.
                    inform("interrupted during %s %s VR%.0f after "
                           "%llu/%d runs (masked=%llu sdc=%llu "
                           "crash=%llu timeout=%llu enginefault=%llu)",
                           name.c_str(),
                           models::modelKindName(mr.kind), vr * 100,
                           static_cast<unsigned long long>(
                               cell.result.runs),
                           cellRunCap(opt),
                           static_cast<unsigned long long>(
                               cell.result.masked),
                           static_cast<unsigned long long>(
                               cell.result.sdc),
                           static_cast<unsigned long long>(
                               cell.result.crash),
                           static_cast<unsigned long long>(
                               cell.result.timeout),
                           static_cast<unsigned long long>(
                               cell.result.engineFault));
                    interrupted = true;
                    break;
                }
                grid.cells.push_back(std::move(cell));
            }
        }
    }
    if (interrupted) {
        grid.interrupted = true;
        inform("evaluation grid interrupted with %zu cell(s) complete; "
               "rerun with REPRO_RESUME=1 to pick up where it stopped",
               grid.cells.size());
        return grid;
    }
    if (!cachePath.empty())
        saveGrid(cachePath, grid);
    // The grid is durably cached (or caching is off and the journals
    // have no future): the per-cell journals have served their purpose.
    for (auto &j : journals)
        j->remove();
    return grid;
}

} // namespace tea::core
