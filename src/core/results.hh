/**
 * @file
 * Full-grid campaign execution (every workload x error model x VR
 * level) with an on-disk result cache, so the Fig. 9 / Fig. 10 / AVM
 * benches share one expensive evaluation pass.
 */

#ifndef TEA_CORE_RESULTS_HH
#define TEA_CORE_RESULTS_HH

#include <optional>
#include <string>
#include <vector>

#include "core/toolflow.hh"
#include "inject/campaign.hh"

namespace tea::core {

struct CampaignCell
{
    std::string workload;
    models::ModelKind model;
    double vrFrac;
    inject::CampaignResult result;
};

struct EvaluationGrid
{
    std::vector<CampaignCell> cells;
    /**
     * True when a cooperative cancellation stopped the grid early.
     * The cells present are complete and exact; the rest were left in
     * their journals for a REPRO_RESUME=1 rerun.
     */
    bool interrupted = false;

    const inject::CampaignResult *find(const std::string &workload,
                                       models::ModelKind model,
                                       double vrFrac) const;
};

/**
 * Run (or load from cache) the full evaluation grid: the paper's
 * 7 benchmarks x 3 models x 2 VR levels with runsPerCell runs each.
 */
EvaluationGrid runEvaluationGrid(Toolflow &tf, bool useCache = true);

/** Serialize/deserialize the grid (CSV in the toolflow cache dir). */
void saveGrid(const std::string &path, const EvaluationGrid &grid);
std::optional<EvaluationGrid> loadGrid(const std::string &path);

} // namespace tea::core

#endif // TEA_CORE_RESULTS_HH
