/**
 * @file
 * Full-grid campaign execution (every workload x error model x VR
 * level) with an on-disk result cache, so the Fig. 9 / Fig. 10 / AVM
 * benches share one expensive evaluation pass.
 *
 * The grid is first *planned* — a canonical enumeration of cells, each
 * carrying the exact RNG substream state it would receive in the
 * classic sequential loop — and then executed cell by cell through one
 * shared runGridCell() path. The fleet layer (src/fleet) executes the
 * same plan across worker processes: because a cell's randomness is
 * captured in its CellPlan and the execution path is shared, an
 * N-process fleet produces byte-identical journals, manifests, and
 * grid CSVs to the single-process loop.
 */

#ifndef TEA_CORE_RESULTS_HH
#define TEA_CORE_RESULTS_HH

#include <array>
#include <atomic>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "core/toolflow.hh"
#include "inject/campaign.hh"

namespace tea::core {

struct CampaignCell
{
    std::string workload;
    models::ModelKind model;
    double vrFrac;
    inject::CampaignResult result;
};

struct EvaluationGrid
{
    std::vector<CampaignCell> cells;
    /**
     * True when a cooperative cancellation stopped the grid early.
     * The cells present are complete and exact; the rest were left in
     * their journals for a REPRO_RESUME=1 rerun.
     */
    bool interrupted = false;

    const inject::CampaignResult *find(const std::string &workload,
                                       models::ModelKind model,
                                       double vrFrac) const;
};

/**
 * Which part of the full grid to run. The default (empty workload
 * list) is the paper's complete 7 benchmarks x 3 models x 2 VR grid;
 * tests and fleet benches restrict it. The workload subset is part of
 * the campaign identity: a restricted grid is its own enumeration with
 * its own cell RNG states.
 */
struct GridSpec
{
    /** Workload subset in canonical order; empty = all workloads. */
    std::vector<std::string> workloads;
    bool useCache = true;

    // ---- observation-only execution hooks ---------------------------
    // Neither field is part of the campaign identity: they are never
    // serialized into fleet plans and have no effect on any byte the
    // campaign produces. The service daemon uses them to stream
    // per-cell results to clients and to stop one campaign without
    // cancelling the whole process.

    /**
     * Invoked after each cell completes and is appended to the grid
     * (from the executing thread, in canonical cell order). Not
     * invoked when the whole grid is served from its CSV cache.
     */
    std::function<void(const CampaignCell &)> onCell;
    /**
     * Cooperative per-campaign stop, honoured at cell boundaries like
     * the process-wide CancelToken: the grid returns with
     * `interrupted = true` and the completed prefix intact (journals
     * preserved for a resume).
     */
    const std::atomic<bool> *stopFlag = nullptr;
};

/**
 * One planned grid cell: everything a process — this one or a fleet
 * worker — needs to execute the cell bit-identically to the classic
 * sequential grid loop.
 */
struct CellPlan
{
    /** Canonical position in the grid enumeration. */
    uint64_t index = 0;
    std::string workload;
    models::ModelKind model = models::ModelKind::DA;
    double vrFrac = 0.0;
    /** Fixed run count (or the adaptive cap). */
    int runCap = 0;
    /** The cell's Rng state at campaign entry (rng.split() chain). */
    std::array<uint64_t, 4> rngState{};
};

/**
 * Enumerate the grid canonically (workload-major, then VR, then
 * DA/IA/WA) and capture each cell's RNG substream — the exact state
 * the classic loop would hand it.
 */
std::vector<CellPlan> planEvaluationGrid(const ToolflowOptions &opt,
                                         const GridSpec &spec = {});

// ---- cache-artifact naming (shared with src/fleet) -----------------

/** Injection runs per cell: fixed count or the adaptive cap. */
int cellRunCap(const ToolflowOptions &opt);
/** Grid CSV path in the cache dir ("" when caching is off). */
std::string gridCachePath(const ToolflowOptions &opt);
/** Journal file path for one grid cell (unique per configuration). */
std::string cellJournalPath(const ToolflowOptions &opt,
                            const std::string &workload,
                            models::ModelKind kind, double vr);
/** Manifest file path for one grid cell (mirrors cellJournalPath). */
std::string cellManifestPath(const ToolflowOptions &opt,
                             const std::string &workload,
                             models::ModelKind kind, double vr);
/** Everything a cell's journaled records depend on (journal header). */
std::string cellIdentity(const ToolflowOptions &opt,
                         const std::string &workload,
                         const models::ErrorModel &model, double vr);

/**
 * Build a planned cell's error model through the toolflow's
 * characterization caches (fleet workers executing run ranges need the
 * model without the rest of runGridCell).
 */
std::unique_ptr<models::ErrorModel> cellModel(Toolflow &tf,
                                              const CellPlan &plan);

/**
 * Execute one planned cell end-to-end: build its model, open/replay
 * its journal (honouring opt.resume), run the campaign, and write the
 * run manifest. `gridCsvPath` is recorded in the manifest for
 * provenance. The journal file is left on disk — callers remove it
 * once the cell's result is durable elsewhere (the saved grid CSV, or
 * a fleet done-file). The single execution path shared by
 * runEvaluationGrid and the fleet worker.
 *
 * `onFreshRecord`, when set, is invoked (from worker threads) for each
 * freshly-executed run after it is journaled — fleet workers use it to
 * count fresh work and to host fault-injection test hooks.
 */
CampaignCell runGridCell(
    Toolflow &tf, const CellPlan &plan, const std::string &gridCsvPath,
    const std::function<void(uint64_t,
                             const inject::InjectionCampaign::RunRecord &)>
        &onFreshRecord = {});

/**
 * Run (or load from cache) the evaluation grid for `spec`; the
 * default spec is the paper's full grid.
 */
EvaluationGrid runEvaluationGrid(Toolflow &tf, const GridSpec &spec);
EvaluationGrid runEvaluationGrid(Toolflow &tf, bool useCache = true);

/** Serialize/deserialize the grid (CSV in the toolflow cache dir). */
void saveGrid(const std::string &path, const EvaluationGrid &grid);
std::optional<EvaluationGrid> loadGrid(const std::string &path);

} // namespace tea::core

#endif // TEA_CORE_RESULTS_HH
