#include "core/journal.hh"

#include <cstdio>
#include <cstring>
#include <filesystem>
#include <map>
#include <sstream>
#include <vector>

#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "util/crc32.hh"
#include "util/fsatomic.hh"
#include "util/logging.hh"

namespace tea::core {

namespace {

// v3 appends the multi-core outcome refinement (McClass) to each
// record; v2 added the run's log likelihood-ratio weight as an exact
// 64-bit pattern (importance-sampled campaigns must replay weights
// bit-for-bit). Older files fail the magic check and are started
// fresh — the journal path revision bump retires them anyway.
constexpr const char *kJournalMagic = "tea-journal-v3";

std::string
headerLine(const std::string &identity)
{
    char buf[32];
    std::snprintf(buf, sizeof(buf), " c%08x ",
                  crc32(identity.data(), identity.size()));
    return kJournalMagic + std::string(buf) + identity;
}

std::string
recordLine(uint64_t idx, const ShardJournal::RunRecord &rec)
{
    // The log-weight travels as its raw IEEE-754 bit pattern: decimal
    // formatting could round, and a replayed weight that differs in
    // one ulp would break resumed-campaign bit identity.
    uint64_t wBits;
    static_assert(sizeof(wBits) == sizeof(rec.logWeight));
    std::memcpy(&wBits, &rec.logWeight, sizeof(wBits));
    char buf[176];
    int n = std::snprintf(
        buf, sizeof(buf), "r %llu %d %llu %llu %llu %u %d %016llx %d",
        static_cast<unsigned long long>(idx),
        static_cast<int>(rec.outcome),
        static_cast<unsigned long long>(rec.injected),
        static_cast<unsigned long long>(rec.committed),
        static_cast<unsigned long long>(rec.wrongPath), rec.attempts,
        static_cast<int>(rec.fault),
        static_cast<unsigned long long>(wBits),
        static_cast<int>(rec.mcClass));
    std::snprintf(buf + n, sizeof(buf) - n, " c%08x",
                  crc32(buf, static_cast<size_t>(n)));
    return buf;
}

/** Parse one "r ... c<crc>" line; false on any damage. */
bool
parseRecordLine(const std::string &line, uint64_t &idx,
                ShardJournal::RunRecord &rec)
{
    size_t cpos = line.rfind(" c");
    if (cpos == std::string::npos || line.size() - cpos != 10)
        return false;
    uint32_t storedCrc = 0;
    if (std::sscanf(line.c_str() + cpos + 2, "%8x", &storedCrc) != 1)
        return false;
    if (crc32(line.data(), cpos) != storedCrc)
        return false;
    unsigned long long i, inj, com, wp, wBits;
    int outcome, fault, mcClass;
    unsigned attempts;
    if (std::sscanf(line.c_str(),
                    "r %llu %d %llu %llu %llu %u %d %llx %d", &i,
                    &outcome, &inj, &com, &wp, &attempts, &fault,
                    &wBits, &mcClass) != 9)
        return false;
    if (outcome < 0 ||
        outcome > static_cast<int>(inject::Outcome::EngineFault))
        return false;
    if (mcClass < 0 ||
        mcClass > static_cast<int>(inject::McClass::Timeout))
        return false;
    idx = i;
    rec.outcome = static_cast<inject::Outcome>(outcome);
    rec.injected = inj;
    rec.committed = com;
    rec.wrongPath = wp;
    rec.attempts = attempts;
    rec.fault = static_cast<ErrorCode>(fault);
    rec.mcClass = static_cast<inject::McClass>(mcClass);
    uint64_t bits = wBits;
    std::memcpy(&rec.logWeight, &bits, sizeof(rec.logWeight));
    return true;
}

} // namespace

ShardJournal::ShardJournal(std::string path) : path_(std::move(path)) {}

size_t
ShardJournal::open(const std::string &identity, bool resume)
{
    records_.clear();
    if (out_.is_open())
        out_.close();

    std::string header = headerLine(identity);
    std::vector<std::string> validLines;
    bool damaged = false;
    if (resume) {
        std::ifstream in(path_);
        if (in) {
            // A file that does not end in '\n' was cut mid-append. The
            // final line may still parse (the newline alone was lost);
            // either way the file must be rewritten, or the next
            // append would concatenate onto the partial line and tear
            // an otherwise-good record.
            bool terminated = true;
            {
                in.seekg(0, std::ios::end);
                auto size = in.tellg();
                if (size > 0) {
                    in.seekg(-1, std::ios::end);
                    terminated = in.get() == '\n';
                }
                in.seekg(0, std::ios::beg);
            }
            std::string line;
            if (std::getline(in, line) && line == header) {
                while (std::getline(in, line)) {
                    uint64_t idx;
                    RunRecord rec;
                    bool last = in.peek() == EOF;
                    if (!parseRecordLine(line, idx, rec)) {
                        damaged = true;
                        break; // torn tail: keep the valid prefix
                    }
                    if (last && !terminated) {
                        // Complete record, missing only its newline:
                        // keep it, but force the rewrite below.
                        damaged = true;
                    }
                    validLines.push_back(line);
                    records_[idx] = rec;
                }
            } else if (!line.empty()) {
                warn("journal '%s' belongs to a different campaign; "
                     "starting fresh",
                     path_.c_str());
            }
        }
    }

    if (records_.empty() || damaged) {
        // Rewrite: fresh header plus whatever prefix survived, staged
        // and renamed atomically — a crash mid-rewrite leaves the old
        // journal intact instead of losing every record.
        std::string content = header + "\n";
        for (const auto &l : validLines)
            content += l + "\n";
        if (!atomicWriteFile(path_, content)) {
            // The surviving records are still valid in memory; only
            // durability of *new* appends is lost.
            warn("cannot write journal '%s'; resume disabled for this "
                 "cell",
                 path_.c_str());
            return records_.size();
        }
        if (damaged)
            warn("journal '%s' had a torn tail; kept %zu valid "
                 "record(s)",
                 path_.c_str(), validLines.size());
    }
    out_.open(path_, std::ios::app);
    if (!out_)
        warn("cannot append to journal '%s'", path_.c_str());
    return records_.size();
}

bool
ShardJournal::tryReplay(uint64_t idx, RunRecord &rec) const
{
    auto it = records_.find(idx);
    if (it == records_.end())
        return false;
    rec = it->second;
    return true;
}

void
ShardJournal::append(uint64_t idx, const RunRecord &rec)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!out_.is_open())
        return;
    out_ << recordLine(idx, rec) << "\n";
    out_.flush();
    obs::Registry::global()
        .counter(obs::metric::kJournalAppends, "",
                 "run records appended to shard journals")
        .inc(1);
}

void
ShardJournal::canonicalize()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (out_.is_open())
        out_.close();
    std::ifstream in(path_);
    if (!in)
        return;
    std::string header;
    if (!std::getline(in, header)) {
        out_.open(path_, std::ios::app);
        return;
    }
    // Keyed by index: damaged lines are dropped (the same policy as
    // open()), duplicates collapse to the last append.
    std::map<uint64_t, std::string> lines;
    std::string line;
    while (std::getline(in, line)) {
        uint64_t idx;
        RunRecord rec;
        if (parseRecordLine(line, idx, rec))
            lines[idx] = line;
    }
    in.close();
    std::string content = header + "\n";
    for (const auto &[idx, l] : lines)
        content += l + "\n";
    if (!atomicWriteFile(path_, content))
        warn("cannot canonicalize journal '%s'", path_.c_str());
    out_.open(path_, std::ios::app);
}

void
ShardJournal::remove()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (out_.is_open())
        out_.close();
    std::error_code ec;
    std::filesystem::remove(path_, ec);
    records_.clear();
}

} // namespace tea::core
