#include "inject/campaign.hh"

#include <cstring>

#include "sim/func_sim.hh"
#include "util/logging.hh"

namespace tea::inject {

using models::ErrorModel;
using models::ProgramProfile;
using sim::OooSim;

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Masked: return "Masked";
      case Outcome::SDC: return "SDC";
      case Outcome::Crash: return "Crash";
      case Outcome::Timeout: return "Timeout";
    }
    return "?";
}

double
CampaignResult::errorRatio() const
{
    if (committedInstructions == 0)
        return 0.0;
    return static_cast<double>(injectedErrors) /
           static_cast<double>(committedInstructions);
}

double
CampaignResult::avm() const
{
    if (runs == 0)
        return 0.0;
    return static_cast<double>(sdc + crash + timeout) /
           static_cast<double>(runs);
}

double
CampaignResult::fraction(Outcome o) const
{
    if (runs == 0)
        return 0.0;
    uint64_t n = 0;
    switch (o) {
      case Outcome::Masked: n = masked; break;
      case Outcome::SDC: n = sdc; break;
      case Outcome::Crash: n = crash; break;
      case Outcome::Timeout: n = timeout; break;
    }
    return static_cast<double>(n) / static_cast<double>(runs);
}

InjectionCampaign::InjectionCampaign(workloads::Workload workload,
                                     sim::OooConfig cfg)
    : workload_(std::move(workload)), cfg_(cfg)
{
    // Profile from a fast functional run...
    sim::FuncSim fsim(workload_.program);
    auto fres = fsim.run();
    fatal_if(fres.status != sim::FuncSim::Status::Halted,
             "workload '%s' golden run did not halt (%s)",
             workload_.name.c_str(), sim::trapName(fres.trap));
    profile_ = ProgramProfile::fromFuncSim(fsim, fres.instructions);

    // ...and the timing/output reference from a golden detailed run.
    OooSim osim(workload_.program, cfg_);
    auto ores = osim.run(~0ULL);
    fatal_if(ores.status != OooSim::Status::Halted,
             "workload '%s' golden OoO run did not halt",
             workload_.name.c_str());
    goldenCycles_ = ores.cycles;
    goldenSignature_ = outputSignature(osim.memory(), osim.console());
}

std::vector<uint8_t>
InjectionCampaign::outputSignature(const sim::Memory &mem,
                                   const sim::Console &console) const
{
    std::vector<uint8_t> sig;
    for (const auto &sym : workload_.outputSymbols) {
        auto block = mem.readBlock(workload_.program.symbol(sym),
                                   workload_.program.symbolSize(sym));
        sig.insert(sig.end(), block.begin(), block.end());
    }
    size_t off = sig.size();
    sig.resize(off + console.size() * 8);
    std::memcpy(sig.data() + off, console.data(), console.size() * 8);
    return sig;
}

Outcome
InjectionCampaign::runOne(const ErrorModel &model, Rng &rng,
                          uint64_t *injectedOut)
{
    auto events = model.plan(profile_, rng);
    OooSim sim(workload_.program, cfg_, sim::InjectionPlan(events));
    auto res = sim.run(2 * goldenCycles_);
    if (injectedOut)
        *injectedOut = res.injectionsApplied;
    switch (res.status) {
      case OooSim::Status::Crashed:
        return Outcome::Crash;
      case OooSim::Status::CycleLimit:
        return Outcome::Timeout;
      case OooSim::Status::Halted:
        break;
    }
    auto sig = outputSignature(sim.memory(), sim.console());
    return sig == goldenSignature_ ? Outcome::Masked : Outcome::SDC;
}

CampaignResult
InjectionCampaign::run(const ErrorModel &model, int runs, Rng &rng)
{
    CampaignResult out;
    out.workload = workload_.name;
    out.model = model.describe();
    for (int i = 0; i < runs; ++i) {
        auto events = model.plan(profile_, rng);
        OooSim sim(workload_.program, cfg_, sim::InjectionPlan(events));
        auto res = sim.run(2 * goldenCycles_);
        ++out.runs;
        out.injectedErrors += res.injectionsApplied;
        out.committedInstructions += res.committed;
        out.wrongPathInjections += res.injectionsOnWrongPath;
        Outcome oc;
        if (res.status == OooSim::Status::Crashed) {
            oc = Outcome::Crash;
        } else if (res.status == OooSim::Status::CycleLimit) {
            oc = Outcome::Timeout;
        } else {
            auto sig = outputSignature(sim.memory(), sim.console());
            oc = (sig == goldenSignature_) ? Outcome::Masked
                                           : Outcome::SDC;
        }
        switch (oc) {
          case Outcome::Masked: ++out.masked; break;
          case Outcome::SDC: ++out.sdc; break;
          case Outcome::Crash: ++out.crash; break;
          case Outcome::Timeout: ++out.timeout; break;
        }
    }
    return out;
}

} // namespace tea::inject
