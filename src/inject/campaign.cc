#include "inject/campaign.hh"

#include <cstring>

#include "sim/func_sim.hh"
#include "util/logging.hh"

namespace tea::inject {

using models::ErrorModel;
using models::ProgramProfile;
using sim::OooSim;

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Masked: return "Masked";
      case Outcome::SDC: return "SDC";
      case Outcome::Crash: return "Crash";
      case Outcome::Timeout: return "Timeout";
    }
    return "?";
}

double
CampaignResult::errorRatio() const
{
    if (committedInstructions == 0)
        return 0.0;
    return static_cast<double>(injectedErrors) /
           static_cast<double>(committedInstructions);
}

double
CampaignResult::avm() const
{
    if (runs == 0)
        return 0.0;
    return static_cast<double>(sdc + crash + timeout) /
           static_cast<double>(runs);
}

double
CampaignResult::fraction(Outcome o) const
{
    if (runs == 0)
        return 0.0;
    uint64_t n = 0;
    switch (o) {
      case Outcome::Masked: n = masked; break;
      case Outcome::SDC: n = sdc; break;
      case Outcome::Crash: n = crash; break;
      case Outcome::Timeout: n = timeout; break;
    }
    return static_cast<double>(n) / static_cast<double>(runs);
}

InjectionCampaign::InjectionCampaign(workloads::Workload workload,
                                     sim::OooConfig cfg)
    : workload_(std::move(workload)), cfg_(cfg)
{
    // Profile from a fast functional run...
    sim::FuncSim fsim(workload_.program);
    auto fres = fsim.run();
    fatal_if(fres.status != sim::FuncSim::Status::Halted,
             "workload '%s' golden run did not halt (%s)",
             workload_.name.c_str(), sim::trapName(fres.trap));
    profile_ = ProgramProfile::fromFuncSim(fsim, fres.instructions);

    // ...and the timing/output reference from a golden detailed run.
    OooSim osim(workload_.program, cfg_);
    auto ores = osim.run(~0ULL);
    fatal_if(ores.status != OooSim::Status::Halted,
             "workload '%s' golden OoO run did not halt",
             workload_.name.c_str());
    goldenCycles_ = ores.cycles;
    goldenSignature_ = outputSignature(osim.memory(), osim.console());
}

std::vector<uint8_t>
InjectionCampaign::outputSignature(const sim::Memory &mem,
                                   const sim::Console &console) const
{
    std::vector<uint8_t> sig;
    for (const auto &sym : workload_.outputSymbols) {
        auto block = mem.readBlock(workload_.program.symbol(sym),
                                   workload_.program.symbolSize(sym));
        sig.insert(sig.end(), block.begin(), block.end());
    }
    size_t off = sig.size();
    sig.resize(off + console.size() * 8);
    std::memcpy(sig.data() + off, console.data(), console.size() * 8);
    return sig;
}

InjectionCampaign::RunRecord
InjectionCampaign::executeOne(const ErrorModel &model, Rng &rng) const
{
    auto events = model.plan(profile_, rng);
    OooSim sim(workload_.program, cfg_, sim::InjectionPlan(events));
    auto res = sim.run(2 * goldenCycles_);
    RunRecord rec;
    rec.injected = res.injectionsApplied;
    rec.committed = res.committed;
    rec.wrongPath = res.injectionsOnWrongPath;
    switch (res.status) {
      case OooSim::Status::Crashed:
        rec.outcome = Outcome::Crash;
        break;
      case OooSim::Status::CycleLimit:
        rec.outcome = Outcome::Timeout;
        break;
      case OooSim::Status::Halted: {
        auto sig = outputSignature(sim.memory(), sim.console());
        rec.outcome = (sig == goldenSignature_) ? Outcome::Masked
                                                : Outcome::SDC;
        break;
      }
    }
    return rec;
}

Outcome
InjectionCampaign::runOne(const ErrorModel &model, Rng &rng,
                          uint64_t *injectedOut) const
{
    RunRecord rec = executeOne(model, rng);
    if (injectedOut)
        *injectedOut = rec.injected;
    return rec.outcome;
}

CampaignResult
InjectionCampaign::run(const ErrorModel &model, int runs, Rng &rng,
                       ThreadPool *pool) const
{
    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    Rng base = rng.split();
    std::vector<RunRecord> records(runs > 0 ? runs : 0);
    tp.parallelFor(0, records.size(), [&](uint64_t i, unsigned) {
        Rng runRng = base.fork(i);
        records[i] = executeOne(model, runRng);
    });

    CampaignResult out;
    out.workload = workload_.name;
    out.model = model.describe();
    for (const RunRecord &rec : records) {
        ++out.runs;
        out.injectedErrors += rec.injected;
        out.committedInstructions += rec.committed;
        out.wrongPathInjections += rec.wrongPath;
        switch (rec.outcome) {
          case Outcome::Masked: ++out.masked; break;
          case Outcome::SDC: ++out.sdc; break;
          case Outcome::Crash: ++out.crash; break;
          case Outcome::Timeout: ++out.timeout; break;
        }
    }
    return out;
}

} // namespace tea::inject
