#include "inject/campaign.hh"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstring>
#include <limits>

#include "isa/isa.hh"
#include "mc/mc_func_sim.hh"
#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"
#include "sim/func_sim.hh"
#include "stats/planner.hh"
#include "util/logging.hh"

namespace tea::inject {

using models::ErrorModel;
using models::ProgramProfile;
using sim::OooSim;

const char *
outcomeName(Outcome outcome)
{
    switch (outcome) {
      case Outcome::Masked: return "Masked";
      case Outcome::SDC: return "SDC";
      case Outcome::Crash: return "Crash";
      case Outcome::Timeout: return "Timeout";
      case Outcome::EngineFault: return "EngineFault";
    }
    return "?";
}

const char *
mcClassName(McClass c)
{
    switch (c) {
      case McClass::None: return "None";
      case McClass::Masked: return "Masked";
      case McClass::CoherenceMasked: return "CoherenceMasked";
      case McClass::SdcSameCore: return "SdcSameCore";
      case McClass::SdcCrossCore: return "SdcCrossCore";
      case McClass::Crash: return "Crash";
      case McClass::SyncCrash: return "SyncCrash";
      case McClass::Deadlock: return "Deadlock";
      case McClass::Timeout: return "Timeout";
    }
    return "?";
}

double
likelihoodWeight(double logWeight)
{
    // +-700 keeps exp() comfortably inside double range (|log
    // DBL_MAX| ~ 709.8). NaN input degrades to weight 1 — a damaged
    // weight must not poison the whole campaign's sums.
    if (std::isnan(logWeight))
        return 1.0;
    if (logWeight > 700.0)
        logWeight = 700.0;
    else if (logWeight < -700.0)
        logWeight = -700.0;
    return std::exp(logWeight);
}

double
CampaignResult::errorRatio() const
{
    if (committedInstructions == 0)
        return 0.0;
    return static_cast<double>(injectedErrors) /
           static_cast<double>(committedInstructions);
}

double
CampaignResult::avm() const
{
    // No classified run means the AVM is unknown, not zero: a cell
    // whose every run EngineFaulted must not read as perfectly safe.
    if (classified() == 0)
        return std::numeric_limits<double>::quiet_NaN();
    return static_cast<double>(sdc + crash + timeout) /
           static_cast<double>(classified());
}

double
CampaignResult::fraction(Outcome o) const
{
    if (o == Outcome::EngineFault)
        return runs ? static_cast<double>(engineFault) /
                          static_cast<double>(runs)
                    : std::numeric_limits<double>::quiet_NaN();
    if (classified() == 0)
        return std::numeric_limits<double>::quiet_NaN();
    uint64_t n = 0;
    switch (o) {
      case Outcome::Masked: n = masked; break;
      case Outcome::SDC: n = sdc; break;
      case Outcome::Crash: n = crash; break;
      case Outcome::Timeout: n = timeout; break;
      case Outcome::EngineFault: break; // handled above
    }
    return static_cast<double>(n) / static_cast<double>(classified());
}

stats::Interval
CampaignResult::avmInterval(double conf) const
{
    return stats::wilson(sdc + crash + timeout, classified(), conf);
}

double
CampaignResult::avmWeighted() const
{
    if (!(weightSum > 0.0))
        return std::numeric_limits<double>::quiet_NaN();
    return weightUnsafe / weightSum;
}

double
CampaignResult::ess() const
{
    if (!(weightSqSum > 0.0))
        return 0.0;
    return weightSum * weightSum / weightSqSum;
}

stats::Interval
CampaignResult::avmWeightedInterval(double conf) const
{
    if (!(weightSqSum > 0.0))
        return {0.0, 1.0};
    // Unit weights (proposal degraded to the target measure): take
    // the integer path so the interval is bit-identical to the plain
    // campaign's.
    double cls = static_cast<double>(classified());
    double unsafe = static_cast<double>(sdc + crash + timeout);
    if (weightSum == cls && weightSqSum == cls &&
        weightUnsafe == unsafe && weightUnsafeSqSum == unsafe)
        return avmInterval(conf);
    return stats::selfNormalizedWilson(weightUnsafe, weightSum,
                                       weightSqSum,
                                       weightUnsafeSqSum, conf);
}

stats::Interval
CampaignResult::fractionInterval(Outcome o, double conf) const
{
    if (o == Outcome::EngineFault)
        return stats::wilson(engineFault, runs, conf);
    uint64_t n = 0;
    switch (o) {
      case Outcome::Masked: n = masked; break;
      case Outcome::SDC: n = sdc; break;
      case Outcome::Crash: n = crash; break;
      case Outcome::Timeout: n = timeout; break;
      case Outcome::EngineFault: break; // handled above
    }
    return stats::wilson(n, classified(), conf);
}

InjectionCampaign::InjectionCampaign(Unprepared,
                                     workloads::Workload workload,
                                     sim::OooConfig cfg,
                                     mc::McConfig mcCfg)
    : workload_(std::move(workload)), cfg_(cfg), mcCfg_(mcCfg)
{
    mcCfg_.core = cfg_;
}

InjectionCampaign::InjectionCampaign(workloads::Workload workload,
                                     sim::OooConfig cfg,
                                     mc::McConfig mcCfg)
    : InjectionCampaign(Unprepared{}, std::move(workload), cfg, mcCfg)
{
    Error err = prepare();
    fatal_if(!err.ok(), "%s", err.describe().c_str());
}

Expected<std::unique_ptr<InjectionCampaign>>
InjectionCampaign::create(workloads::Workload workload,
                          sim::OooConfig cfg, mc::McConfig mcCfg)
{
    std::unique_ptr<InjectionCampaign> c(new InjectionCampaign(
        Unprepared{}, std::move(workload), cfg, mcCfg));
    Error err = c->prepare();
    if (!err.ok())
        return err;
    return c;
}

Error
InjectionCampaign::prepare()
{
    if (workload_.threaded) {
        try {
            // Per-core profiles from the functional N-core run: model
            // planning addresses "the n-th eligible op on core k", so
            // each core needs its own dynamic op counts.
            mc::McFuncSim::Config fcfg;
            fcfg.cores = mcCfg_.cores;
            mc::McFuncSim fsim(workload_.program, fcfg);
            auto fres = fsim.run();
            if (fres.status != mc::McFuncSim::Status::Halted)
                return makeError(
                    ErrorCode::GoldenRunFailed,
                    "workload '%s' golden mc run did not halt (%s)",
                    workload_.name.c_str(), sim::trapName(fres.trap));
            coreProfiles_.assign(fsim.cores(), {});
            profile_ = {};
            for (unsigned k = 0; k < fsim.cores(); ++k) {
                ProgramProfile &p = coreProfiles_[k];
                p.totalInstructions = fsim.instructions(k);
                for (unsigned i = 0; i < isa::kNumOps; ++i) {
                    auto op = static_cast<isa::Op>(i);
                    if (isa::hasDest(op))
                        p.instructionsWithDest += fsim.opCount(k, op);
                    if (isa::isFpArith(op))
                        p.fpOpCounts[static_cast<size_t>(
                            isa::fpuOpFor(op))] += fsim.opCount(k, op);
                }
                profile_.totalInstructions += p.totalInstructions;
                profile_.instructionsWithDest += p.instructionsWithDest;
                for (size_t j = 0; j < p.fpOpCounts.size(); ++j)
                    profile_.fpOpCounts[j] += p.fpOpCounts[j];
            }

            // Timing/output reference from a golden detailed mc run.
            mc::McSim msim(workload_.program, mcCfg_);
            auto mres = msim.run(~0ULL);
            if (mres.status != mc::McSim::Status::Halted)
                return makeError(
                    ErrorCode::GoldenRunFailed,
                    "workload '%s' golden McSim run did not halt",
                    workload_.name.c_str());
            goldenCycles_ = mres.cycles;
            goldenSignature_ =
                outputSignature(msim.memory(), msim.console());
        } catch (const std::exception &e) {
            return makeError(
                ErrorCode::EngineFault,
                "workload '%s' golden preparation faulted: %s",
                workload_.name.c_str(), e.what());
        }
        return {};
    }
    try {
        // Profile from a fast functional run...
        sim::FuncSim fsim(workload_.program);
        auto fres = fsim.run();
        if (fres.status != sim::FuncSim::Status::Halted)
            return makeError(ErrorCode::GoldenRunFailed,
                             "workload '%s' golden run did not halt (%s)",
                             workload_.name.c_str(),
                             sim::trapName(fres.trap));
        profile_ = ProgramProfile::fromFuncSim(fsim, fres.instructions);

        // ...and the timing/output reference from a golden detailed run.
        OooSim osim(workload_.program, cfg_);
        auto ores = osim.run(~0ULL);
        if (ores.status != OooSim::Status::Halted)
            return makeError(ErrorCode::GoldenRunFailed,
                             "workload '%s' golden OoO run did not halt",
                             workload_.name.c_str());
        goldenCycles_ = ores.cycles;
        goldenSignature_ = outputSignature(osim.memory(), osim.console());
    } catch (const std::exception &e) {
        return makeError(ErrorCode::EngineFault,
                         "workload '%s' golden preparation faulted: %s",
                         workload_.name.c_str(), e.what());
    }
    return {};
}

std::vector<uint8_t>
InjectionCampaign::outputSignature(const sim::Memory &mem,
                                   const sim::Console &console) const
{
    std::vector<uint8_t> sig;
    for (const auto &sym : workload_.outputSymbols) {
        auto block = mem.readBlock(workload_.program.symbol(sym),
                                   workload_.program.symbolSize(sym));
        sig.insert(sig.end(), block.begin(), block.end());
    }
    size_t off = sig.size();
    sig.resize(off + console.size() * 8);
    std::memcpy(sig.data() + off, console.data(), console.size() * 8);
    return sig;
}

InjectionCampaign::RunRecord
InjectionCampaign::executeOneMc(const ErrorModel &model, Rng &rng,
                                const Watchdog *watchdog) const
{
    // Plan per core, in core-major order on the one run substream, so
    // the whole multi-core plan is a deterministic function of the run
    // index. Each event is stamped with its core: "the n-th eligible
    // op on core k". The run's weight is the product (log-sum) of the
    // per-core plan weights.
    double logWeight = 0.0;
    std::vector<sim::InjectionPlan> plans;
    plans.reserve(coreProfiles_.size());
    for (unsigned k = 0; k < coreProfiles_.size(); ++k) {
        double lw = 0.0;
        auto events = model.planWeighted(coreProfiles_[k], rng, lw);
        for (auto &e : events)
            e.core = k;
        logWeight += lw;
        plans.emplace_back(events);
    }
    mc::McSim sim(workload_.program, mcCfg_, std::move(plans));
    auto res = sim.run(2 * goldenCycles_, watchdog);

    RunRecord rec;
    rec.logWeight = logWeight;
    rec.injected = res.injectionsApplied;
    rec.committed = res.committed;
    rec.wrongPath = res.injectionsOnWrongPath;
    switch (res.status) {
      case mc::McSim::Status::Crashed:
        rec.outcome = Outcome::Crash;
        rec.mcClass = res.trap == sim::TrapKind::SyncFault
                          ? McClass::SyncCrash
                          : McClass::Crash;
        break;
      case mc::McSim::Status::Deadlock:
        // No commit on any core for the bounded-progress window: the
        // run would never finish. The base taxonomy calls that a
        // Timeout; the refinement keeps it countable on its own.
        rec.outcome = Outcome::Timeout;
        rec.mcClass = McClass::Deadlock;
        break;
      case mc::McSim::Status::CycleLimit:
        rec.outcome = Outcome::Timeout;
        rec.mcClass = McClass::Timeout;
        break;
      case mc::McSim::Status::Interrupted:
        rec.outcome = Outcome::EngineFault;
        rec.fault = res.stop == Watchdog::Stop::Deadline
                        ? ErrorCode::RunDeadline
                        : ErrorCode::Cancelled;
        break;
      case mc::McSim::Status::Halted: {
        auto sig = outputSignature(sim.memory(), sim.console());
        if (sig == goldenSignature_) {
            rec.outcome = Outcome::Masked;
            // Coherence-masked: an injection landed AND some clean
            // committed store overwrote a tainted word — the error
            // demonstrably died in memory rather than never mattering.
            rec.mcClass = (res.injectionsApplied > 0 &&
                           res.coh.overwriteMasks > 0)
                              ? McClass::CoherenceMasked
                              : McClass::Masked;
        } else {
            rec.outcome = Outcome::SDC;
            rec.mcClass = res.crossTaintedLoads > 0
                              ? McClass::SdcCrossCore
                              : McClass::SdcSameCore;
        }
        break;
      }
    }

    // Coherence/synchronization observability (never aggregated into
    // campaign statistics — the journal stays the source of truth).
    obs::Registry &reg = obs::Registry::global();
    reg.counter(obs::metric::kMcInvalidations, "",
                "sharer lines invalidated by committed stores")
        .inc(res.coh.invalidations);
    reg.counter(obs::metric::kMcC2cTransfers, "",
                "dirty lines forwarded cache-to-cache")
        .inc(res.coh.c2cTransfers);
    reg.counter(obs::metric::kMcL2Misses, "",
                "shared-L2 misses across all cores")
        .inc(res.coh.l2Misses);
    reg.counter(obs::metric::kMcCrossReads, "",
                "committed loads of another core's tainted data")
        .inc(res.crossTaintedLoads);
    reg.counter(obs::metric::kMcOverwriteMasked, "",
                "clean committed stores overwriting tainted words")
        .inc(res.coh.overwriteMasks);
    reg.counter(obs::metric::kMcSpawns, "",
                "cores started via the spawn syscall")
        .inc(res.coh.spawns);
    reg.counter(obs::metric::kMcBarriers, "",
                "completed barrier episodes")
        .inc(res.coh.barriers);
    return rec;
}

InjectionCampaign::RunRecord
InjectionCampaign::executeOne(const ErrorModel &model, Rng &rng,
                              const Watchdog *watchdog) const
{
    if (workload_.threaded)
        return executeOneMc(model, rng, watchdog);
    double logWeight = 0.0;
    auto events = model.planWeighted(profile_, rng, logWeight);
    OooSim sim(workload_.program, cfg_, sim::InjectionPlan(events));
    auto res = sim.run(2 * goldenCycles_, watchdog);
    RunRecord rec;
    rec.logWeight = logWeight;
    rec.injected = res.injectionsApplied;
    rec.committed = res.committed;
    rec.wrongPath = res.injectionsOnWrongPath;
    switch (res.status) {
      case OooSim::Status::Crashed:
        rec.outcome = Outcome::Crash;
        break;
      case OooSim::Status::CycleLimit:
        rec.outcome = Outcome::Timeout;
        break;
      case OooSim::Status::Interrupted:
        // Infrastructure cut the run off: a deadline overrun is an
        // EngineFault record; a cancellation means the run never
        // finished and must not be recorded at all.
        rec.outcome = Outcome::EngineFault;
        rec.fault = res.stop == Watchdog::Stop::Deadline
                        ? ErrorCode::RunDeadline
                        : ErrorCode::Cancelled;
        break;
      case OooSim::Status::Halted: {
        auto sig = outputSignature(sim.memory(), sim.console());
        rec.outcome = (sig == goldenSignature_) ? Outcome::Masked
                                                : Outcome::SDC;
        break;
      }
    }
    return rec;
}

InjectionCampaign::RunRecord
InjectionCampaign::executeOneContained(const ErrorModel &model,
                                       const Rng &base, uint64_t run,
                                       const RunOptions &opts) const
{
    int maxAttempts = std::max(1, opts.maxAttempts);
    std::string lastFault;
    for (int attempt = 0; attempt < maxAttempts; ++attempt) {
        // Attempt 0 draws from the canonical fork(run) substream so
        // contained and plain executions are bit-identical; retries
        // re-fork deterministically so a poisoned draw is not simply
        // replayed.
        Rng rng = attempt == 0 ? base.fork(run)
                               : base.fork(run).fork(attempt);
        Watchdog watchdog(opts.cancel, opts.runDeadlineMs);
        try {
            RunRecord rec = executeOne(model, rng, &watchdog);
            rec.attempts = attempt + 1;
            // Deadline cutoffs are deterministic-in-kind (the run is
            // pathologically slow); retrying would spend another full
            // deadline for the same verdict.
            return rec;
        } catch (const std::exception &e) {
            lastFault = e.what();
        } catch (...) {
            lastFault = "non-standard exception";
        }
        if (opts.cancel && opts.cancel->cancelled())
            break;
    }
    RunRecord rec;
    rec.outcome = Outcome::EngineFault;
    rec.attempts = maxAttempts;
    if (opts.cancel && opts.cancel->cancelled()) {
        rec.fault = ErrorCode::Cancelled;
    } else {
        rec.fault = ErrorCode::EngineFault;
        warn("run %llu of '%s' faulted %d time(s); recording "
             "EngineFault (last: %s)",
             static_cast<unsigned long long>(run),
             workload_.name.c_str(), maxAttempts, lastFault.c_str());
    }
    return rec;
}

Outcome
InjectionCampaign::runOne(const ErrorModel &model, Rng &rng,
                          uint64_t *injectedOut) const
{
    RunRecord rec = executeOne(model, rng);
    if (injectedOut)
        *injectedOut = rec.injected;
    return rec.outcome;
}

CampaignResult
InjectionCampaign::run(const ErrorModel &model, int runs, Rng &rng,
                       ThreadPool *pool) const
{
    RunOptions opts;
    opts.pool = pool;
    return run(model, runs, rng, opts);
}

uint64_t
InjectionCampaign::runRange(const ErrorModel &model, uint64_t lo,
                            uint64_t hi, Rng &rng,
                            const RunOptions &opts) const
{
    ThreadPool &tp = opts.pool ? *opts.pool : ThreadPool::global();
    // The same split run() performs, so a range worker's base stream
    // matches the unsplit cell's and fork(i) lands on identical draws.
    Rng base = rng.split();
    if (hi <= lo)
        return 0;
    std::atomic<uint64_t> executed{0};
    obs::Registry &reg = obs::Registry::global();
    obs::Counter mReplays = reg.counter(
        obs::metric::kInjectReplays, "",
        "injection runs satisfied from a journal instead of simulated");
    obs::Histogram mRunMs = reg.histogram(
        obs::metric::kInjectRunMs, obs::latencyBucketsMs(), "",
        "wall time of one contained injection run");
    obs::Span span("inject.range", "inject",
                   static_cast<int64_t>(hi - lo));
    tp.parallelFor(lo, hi, [&](uint64_t i, unsigned) {
        if (opts.cancel && opts.cancel->cancelled())
            return;
        RunRecord rec;
        if (opts.replay && opts.replay(i, rec)) {
            mReplays.inc(1);
            return;
        }
        auto t0 = std::chrono::steady_clock::now();
        rec = executeOneContained(model, base, i, opts);
        mRunMs.observe(std::chrono::duration<double, std::milli>(
                           std::chrono::steady_clock::now() - t0)
                           .count());
        if (rec.fault == ErrorCode::Cancelled)
            return; // shutdown mid-run: leave it for the resume
        executed.fetch_add(1, std::memory_order_relaxed);
        if (opts.onComplete)
            opts.onComplete(i, rec);
    });
    return executed.load();
}

CampaignResult
InjectionCampaign::run(const ErrorModel &model, int runs, Rng &rng,
                       const RunOptions &opts) const
{
    ThreadPool &tp = opts.pool ? *opts.pool : ThreadPool::global();
    Rng base = rng.split();
    size_t n = runs > 0 ? static_cast<size_t>(runs) : 0;
    std::vector<RunRecord> records(n);
    std::vector<uint8_t> done(n, 0);

    // Observation only: counters/histograms never feed back into run
    // scheduling, RNG streams, or the ordered aggregation below.
    obs::Registry &reg = obs::Registry::global();
    obs::Counter mReplays = reg.counter(
        obs::metric::kInjectReplays, "",
        "injection runs satisfied from a journal instead of simulated");
    obs::Counter mCancelled = reg.counter(
        obs::metric::kWatchdogCancelled, "",
        "runs abandoned because a cancellation was requested");
    obs::Histogram mRunMs = reg.histogram(
        obs::metric::kInjectRunMs, obs::latencyBucketsMs(), "",
        "wall time of one contained injection run");

    obs::Span campaignSpan("inject.campaign", "inject",
                           static_cast<int64_t>(n));
    auto executeRange = [&](uint64_t begin, uint64_t end) {
        tp.parallelFor(begin, end, [&](uint64_t i, unsigned) {
            if (opts.cancel && opts.cancel->cancelled())
                return;
            if (opts.replay && opts.replay(i, records[i])) {
                done[i] = 1;
                mReplays.inc(1);
                return;
            }
            obs::Span runSpan("inject.run", "inject",
                              static_cast<int64_t>(i));
            auto t0 = std::chrono::steady_clock::now();
            RunRecord rec = executeOneContained(model, base, i, opts);
            mRunMs.observe(std::chrono::duration<double, std::milli>(
                               std::chrono::steady_clock::now() - t0)
                               .count());
            if (rec.fault == ErrorCode::Cancelled) {
                mCancelled.inc(1);
                return; // shutdown mid-run: leave it for the resume
            }
            records[i] = rec;
            done[i] = 1;
            if (opts.onComplete)
                opts.onComplete(i, records[i]);
        });
    };

    // Runs considered by the aggregation: all of them on the fixed
    // path, the executed prefix on the adaptive path.
    size_t executed = n;
    if (opts.ciTarget > 0.0 && n > 0) {
        // Adaptive stopping. The round loop only ever *truncates* the
        // fixed campaign: run i is executed exactly as the fixed path
        // would execute it, rounds are cut at barriers, and the
        // stop/continue decision is a pure function of the classified
        // counts — so results are bit-identical at every thread count
        // and a bit-exact prefix of the fixed-N campaign.
        stats::PlannerConfig pcfg;
        pcfg.ciTarget = opts.ciTarget;
        pcfg.ciConf = opts.ciConf;
        pcfg.maxPerStratum = n;
        pcfg.unit = 1;
        pcfg.initialRound = opts.initialRound ? opts.initialRound : 64;
        stats::AdaptivePlanner planner(pcfg, 1);
        uint64_t next = 0;
        bool cancelled = false;
        while (!planner.done() && next < n && !cancelled) {
            uint64_t end =
                std::min<uint64_t>(n, next + planner.planRound()[0]);
            executeRange(next, end);
            // Fold the round: EngineFaults carry no AVM evidence and
            // unfinished (cancelled) runs must not count at all.
            uint64_t events = 0, trials = 0;
            double wEvents = 0.0, wSum = 0.0, wSq = 0.0;
            double wEventsSq = 0.0;
            for (uint64_t i = next; i < end; ++i) {
                if (!done[i]) {
                    cancelled = true;
                    continue;
                }
                const RunRecord &rec = records[i];
                if (rec.outcome == Outcome::EngineFault)
                    continue;
                ++trials;
                double w = likelihoodWeight(rec.logWeight);
                wSum += w;
                wSq += w * w;
                if (rec.outcome != Outcome::Masked) {
                    ++events;
                    wEvents += w;
                    wEventsSq += w * w;
                }
            }
            // A reweighted proposal stops on the *weighted* interval
            // (the variance-matched self-normalized one); plain
            // campaigns keep the integer path bit-for-bit.
            if (model.weightedProposal())
                planner.recordWeighted(0, wEvents, wSum, wSq,
                                       wEventsSq, events, trials);
            else
                planner.record(0, events, trials);
            next = end;
        }
        executed = next;
        reg.counter(obs::metric::kStatsRounds, "",
                    "adaptive sampling rounds planned")
            .inc(planner.rounds());
        reg.counter(obs::metric::kStatsEarlyStops, "",
                    "strata stopped early by interval convergence")
            .inc(planner.earlyStops());
        reg.counter(obs::metric::kStatsAllocatedTrials, "",
                    "trials allocated by adaptive planners")
            .inc(planner.totalAllocated());
        reg.counter(obs::metric::kStatsTrialsSaved, "",
                    "trials avoided versus the fixed-size campaign")
            .inc(n > executed ? n - executed : 0);
    } else {
        executeRange(0, n);
    }

    CampaignResult out;
    out.workload = workload_.name;
    out.model = model.describe();
    out.weightedModel = model.weightedProposal();
    for (size_t i = 0; i < executed; ++i) {
        if (!done[i]) {
            out.interrupted = true;
            continue;
        }
        const RunRecord &rec = records[i];
        ++out.runs;
        out.retries += rec.attempts - 1;
        if (rec.fault == ErrorCode::RunDeadline)
            reg.counter(obs::metric::kWatchdogDeadline, "",
                        "runs cut off by the per-run deadline")
                .inc(1);
        if (rec.outcome == Outcome::EngineFault) {
            // Infrastructure failure: excluded from AVM (weighted and
            // unweighted) and from the injection/commit accounting
            // (its counters are partial).
            ++out.engineFault;
            continue;
        }
        out.injectedErrors += rec.injected;
        out.committedInstructions += rec.committed;
        out.wrongPathInjections += rec.wrongPath;
        double w = likelihoodWeight(rec.logWeight);
        out.weightSum += w;
        out.weightSqSum += w * w;
        if (rec.outcome != Outcome::Masked) {
            out.weightUnsafe += w;
            out.weightUnsafeSqSum += w * w;
        }
        switch (rec.outcome) {
          case Outcome::Masked: ++out.masked; break;
          case Outcome::SDC: ++out.sdc; break;
          case Outcome::Crash: ++out.crash; break;
          case Outcome::Timeout: ++out.timeout; break;
          case Outcome::EngineFault: break; // handled above
        }
        switch (rec.mcClass) {
          case McClass::CoherenceMasked: ++out.mcCoherenceMasked; break;
          case McClass::SdcSameCore: ++out.mcSdcSameCore; break;
          case McClass::SdcCrossCore: ++out.mcSdcCrossCore; break;
          case McClass::SyncCrash: ++out.mcSyncCrash; break;
          case McClass::Deadlock: ++out.mcDeadlock; break;
          default: break; // refinements that add nothing to the base
        }
    }
    reg.counter(obs::metric::kInjectRuns, "",
                "classified injection runs (replayed or simulated)")
        .inc(out.runs);
    if (out.weightedModel) {
        reg.counter(obs::metric::kIsRuns, "",
                    "injection runs classified under a reweighted "
                    "(importance-sampling) proposal")
            .inc(out.classified());
        if (out.classified() > 0)
            reg.gauge(obs::metric::kIsEssRatio, "",
                      "effective-sample-size fraction ESS/n of the "
                      "last weighted campaign, in parts per million")
                .set(static_cast<int64_t>(
                    1e6 * out.ess() /
                    static_cast<double>(out.classified())));
    }
    reg.counter(obs::metric::kInjectRetries, "",
                "extra attempts spent containing faulted runs")
        .inc(out.retries);
    const char *help = "injection outcomes by classification";
    reg.counter(obs::metric::kInjectOutcomes, "outcome=\"Masked\"", help)
        .inc(out.masked);
    reg.counter(obs::metric::kInjectOutcomes, "outcome=\"SDC\"", help)
        .inc(out.sdc);
    reg.counter(obs::metric::kInjectOutcomes, "outcome=\"Crash\"", help)
        .inc(out.crash);
    reg.counter(obs::metric::kInjectOutcomes, "outcome=\"Timeout\"", help)
        .inc(out.timeout);
    reg.counter(obs::metric::kInjectOutcomes, "outcome=\"EngineFault\"",
                help)
        .inc(out.engineFault);
    if (workload_.threaded) {
        const char *mcHelp =
            "multi-core outcome refinements by classification";
        reg.counter(obs::metric::kMcOutcomes,
                    "class=\"CoherenceMasked\"", mcHelp)
            .inc(out.mcCoherenceMasked);
        reg.counter(obs::metric::kMcOutcomes, "class=\"SdcSameCore\"",
                    mcHelp)
            .inc(out.mcSdcSameCore);
        reg.counter(obs::metric::kMcOutcomes, "class=\"SdcCrossCore\"",
                    mcHelp)
            .inc(out.mcSdcCrossCore);
        reg.counter(obs::metric::kMcOutcomes, "class=\"SyncCrash\"",
                    mcHelp)
            .inc(out.mcSyncCrash);
        reg.counter(obs::metric::kMcOutcomes, "class=\"Deadlock\"",
                    mcHelp)
            .inc(out.mcDeadlock);
    }
    return out;
}

} // namespace tea::inject
