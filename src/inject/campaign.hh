/**
 * @file
 * Application-evaluation-phase injection campaigns (Section III.B).
 *
 * For a workload: run a golden OoO simulation once (reference cycles
 * and outputs), then repeatedly plan injections with an error model,
 * run the detailed OoO simulation with them, and classify each run as
 * Masked / SDC / Crash / Timeout per the paper's definitions (timeout =
 * 2x the error-free execution time). Aggregates outcome distributions
 * (Fig. 9), injected-error ratios (Fig. 10), and the Application
 * Vulnerability Metric (Eq. 4).
 */

#ifndef TEA_INJECT_CAMPAIGN_HH
#define TEA_INJECT_CAMPAIGN_HH

#include <cstdint>
#include <string>
#include <vector>

#include "models/error_models.hh"
#include "sim/ooo_sim.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/threadpool.hh"
#include "workloads/workloads.hh"

namespace tea::inject {

/** Outcome of one injection run (paper Section IV.A taxonomy). */
enum class Outcome
{
    Masked,
    SDC,
    Crash,
    Timeout,
};

const char *outcomeName(Outcome outcome);

/**
 * Runs per campaign cell for a 3% error margin at 95% confidence
 * (Leveugle et al., the paper's choice).
 */
constexpr int kStatisticalRuns = 1068;

/** Aggregate results of a campaign cell (workload x model x VR). */
struct CampaignResult
{
    std::string workload;
    std::string model;
    uint64_t runs = 0;
    uint64_t masked = 0, sdc = 0, crash = 0, timeout = 0;
    /** Injected errors across all runs (for the Fig. 10 ratio). */
    uint64_t injectedErrors = 0;
    /** Committed instructions across all runs. */
    uint64_t committedInstructions = 0;
    /** Injections landing on squashed (wrong-path) instructions. */
    uint64_t wrongPathInjections = 0;

    /** Error injection ratio (Eq. 2 over the campaign). */
    double errorRatio() const;
    /** Application Vulnerability Metric (Eq. 4). */
    double avm() const;
    double fraction(Outcome o) const;
};

/**
 * Injection campaign driver for one workload. Prepares the golden
 * reference lazily and owns the comparison of run outputs.
 */
class InjectionCampaign
{
  public:
    InjectionCampaign(workloads::Workload workload,
                      sim::OooConfig cfg = sim::OooConfig{});

    /** Golden profile used by the models' planners. */
    const models::ProgramProfile &profile() const { return profile_; }
    /** Error-free cycle count (timeout threshold = 2x this). */
    uint64_t goldenCycles() const { return goldenCycles_; }
    uint64_t goldenInstructions() const
    {
        return profile_.totalInstructions;
    }

    /** Everything one injection run produces. */
    struct RunRecord
    {
        Outcome outcome = Outcome::Masked;
        uint64_t injected = 0;
        uint64_t committed = 0;
        uint64_t wrongPath = 0;
    };

    /**
     * Plan, inject, run, classify — one experiment. The single place
     * outcomes are classified; const and therefore safe to call
     * concurrently as long as each caller owns its Rng.
     */
    RunRecord executeOne(const models::ErrorModel &model, Rng &rng) const;

    /** Convenience wrapper around executeOne returning the outcome. */
    Outcome runOne(const models::ErrorModel &model, Rng &rng,
                   uint64_t *injectedOut = nullptr) const;

    /**
     * Run a full campaign cell. Runs are dispatched as independent
     * tasks on `pool` (the global pool when null); run i draws its
     * injection plan from rng.fork(i), so the aggregate is
     * bit-identical for any thread count.
     */
    CampaignResult run(const models::ErrorModel &model, int runs,
                       Rng &rng, ThreadPool *pool = nullptr) const;

    const workloads::Workload &workload() const { return workload_; }

  private:
    /** Capture the checked output state of a finished simulation. */
    std::vector<uint8_t> outputSignature(const sim::Memory &mem,
                                         const sim::Console &console) const;

    workloads::Workload workload_;
    sim::OooConfig cfg_;
    models::ProgramProfile profile_;
    uint64_t goldenCycles_ = 0;
    std::vector<uint8_t> goldenSignature_;
};

} // namespace tea::inject

#endif // TEA_INJECT_CAMPAIGN_HH
