/**
 * @file
 * Application-evaluation-phase injection campaigns (Section III.B).
 *
 * For a workload: run a golden OoO simulation once (reference cycles
 * and outputs), then repeatedly plan injections with an error model,
 * run the detailed OoO simulation with them, and classify each run as
 * Masked / SDC / Crash / Timeout per the paper's definitions (timeout =
 * 2x the error-free execution time). Aggregates outcome distributions
 * (Fig. 9), injected-error ratios (Fig. 10), and the Application
 * Vulnerability Metric (Eq. 4).
 *
 * Fault containment: the campaign also classifies its *own* failures.
 * An exception escaping one run (a bug in an error model, a transient
 * engine fault) is caught and the run retried with a deterministically
 * re-forked RNG substream; if containment is exhausted the run is
 * recorded as EngineFault — a fifth, infrastructure-level outcome that
 * is never counted into AVM or the paper's outcome fractions. Runs cut
 * off by a wall-clock watchdog deadline are EngineFaults too; runs
 * abandoned by a cooperative cancellation (SIGINT/SIGTERM) are simply
 * not recorded, so statistics never depend on wall-clock behaviour.
 */

#ifndef TEA_INJECT_CAMPAIGN_HH
#define TEA_INJECT_CAMPAIGN_HH

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "mc/mc_sim.hh"
#include "models/error_models.hh"
#include "sim/ooo_sim.hh"
#include "stats/intervals.hh"
#include "util/errors.hh"
#include "util/expected.hh"
#include "util/rng.hh"
#include "util/stats.hh"
#include "util/threadpool.hh"
#include "util/watchdog.hh"
#include "workloads/workloads.hh"

namespace tea::inject {

/**
 * Outcome of one injection run: the paper's Section IV.A taxonomy plus
 * EngineFault for failures of the injection infrastructure itself.
 */
enum class Outcome
{
    Masked,
    SDC,
    Crash,
    Timeout,
    EngineFault,
};

const char *outcomeName(Outcome outcome);

/**
 * Multi-core refinement of the outcome taxonomy. Threaded ("-mt")
 * workloads run on McSim, where an injected error can cross core
 * boundaries through shared memory; each of the paper's program-level
 * outcomes then splits by the propagation evidence the simulator
 * collects (word-granularity taint with per-core origin masks,
 * overwrite tracking, and the sync-fault/deadlock machinery).
 * Single-core runs always record None.
 */
enum class McClass
{
    None = 0,        ///< single-core run (no multi-core refinement)
    Masked,          ///< output matched; no masking evidence needed
    CoherenceMasked, ///< matched, but a clean store overwrote a
                     ///< tainted word (the error died in memory)
    SdcSameCore,     ///< output mismatch, taint never crossed cores
    SdcCrossCore,    ///< mismatch and a core committed a load of
                     ///< another core's tainted data
    Crash,           ///< ordinary trap reached commit
    SyncCrash,       ///< spawn/join/barrier misuse trap (SyncFault)
    Deadlock,        ///< bounded-progress watchdog fired (e.g. a
                     ///< corrupted barrier never released)
    Timeout,         ///< cycle limit with commits still happening
};

const char *mcClassName(McClass c);

/**
 * Turn a journaled log likelihood ratio into the finite weight used by
 * aggregation: exp(logWeight) with the exponent clamped to +-700, so a
 * pathological proposal (an extreme likelihood ratio) degrades to a
 * huge-but-finite or tiny-but-positive weight instead of inf/0/NaN
 * poisoning every weighted sum it touches. exp(0) is exactly 1.
 */
double likelihoodWeight(double logWeight);

/**
 * Runs per campaign cell for a 3% error margin at 95% confidence
 * (Leveugle et al., the paper's choice).
 */
constexpr int kStatisticalRuns = 1068;

/** Containment attempts per run before it is recorded EngineFault. */
constexpr int kDefaultRunAttempts = 3;

/** Aggregate results of a campaign cell (workload x model x VR). */
struct CampaignResult
{
    std::string workload;
    std::string model;
    /** Recorded runs, including EngineFaults. */
    uint64_t runs = 0;
    uint64_t masked = 0, sdc = 0, crash = 0, timeout = 0;
    /** Runs lost to infrastructure faults (excluded from AVM). */
    uint64_t engineFault = 0;
    /** Containment retries that were needed across all runs. */
    uint64_t retries = 0;
    /** True if a cancellation stopped the campaign before all runs. */
    bool interrupted = false;
    /** Injected errors across all classified runs (Fig. 10 ratio). */
    uint64_t injectedErrors = 0;
    /** Committed instructions across all classified runs. */
    uint64_t committedInstructions = 0;
    /** Injections landing on squashed (wrong-path) instructions. */
    uint64_t wrongPathInjections = 0;
    /**
     * Likelihood-ratio weight sums over classified runs (importance
     * sampling): sum of weights, sum over unsafe (SDC/Crash/Timeout)
     * runs, sum of squared weights, and sum of squared weights over
     * unsafe runs (the term the self-normalized variance needs).
     * Plain campaigns have weight exactly 1 per run, so
     * weightSum == classified() and the weighted estimate coincides
     * bit-for-bit with the plain one. EngineFault runs contribute to
     * none of them.
     */
    double weightSum = 0.0;
    double weightUnsafe = 0.0;
    double weightSqSum = 0.0;
    double weightUnsafeSqSum = 0.0;
    /** True when the campaign sampled from a reweighted proposal. */
    bool weightedModel = false;
    /**
     * Multi-core outcome refinements (threaded workloads only; all
     * zero for single-core cells). Each counts a subset of the
     * corresponding base outcome: mcCoherenceMasked <= masked,
     * mcSdcSameCore + mcSdcCrossCore == sdc, mcSyncCrash <= crash,
     * mcDeadlock <= timeout.
     */
    uint64_t mcCoherenceMasked = 0;
    uint64_t mcSdcSameCore = 0;
    uint64_t mcSdcCrossCore = 0;
    uint64_t mcSyncCrash = 0;
    uint64_t mcDeadlock = 0;

    /** Runs that produced one of the paper's four outcomes. */
    uint64_t classified() const { return runs - engineFault; }
    /** Error injection ratio (Eq. 2 over the campaign). */
    double errorRatio() const;
    /**
     * AVM (Eq. 4) over classified runs; EngineFaults never count.
     * NaN when no run was classified (e.g. every run EngineFaulted) —
     * an unknown AVM must never masquerade as a perfect 0.
     */
    double avm() const;
    /**
     * Fraction of an outcome: the paper outcomes over classified runs
     * (NaN when nothing was classified), EngineFault over all recorded
     * runs (NaN when nothing was recorded).
     */
    double fraction(Outcome o) const;
    /** Wilson interval on the AVM over classified runs. */
    stats::Interval avmInterval(double conf = 0.95) const;
    /**
     * Self-normalized importance-sampling AVM: weightUnsafe/weightSum
     * over classified runs (identical to avm() when every weight is
     * 1). NaN when no weight was accumulated.
     */
    double avmWeighted() const;
    /** Kish effective sample size (sum w)^2 / sum w^2 (0 when empty). */
    double ess() const;
    /**
     * Variance-matched Wilson interval on avmWeighted()
     * (stats::selfNormalizedWilson); bit-identical to avmInterval()
     * when every weight is exactly 1.
     */
    stats::Interval avmWeightedInterval(double conf = 0.95) const;
    /** Wilson interval on fraction(o) (same denominators). */
    stats::Interval fractionInterval(Outcome o,
                                     double conf = 0.95) const;
};

/**
 * Injection campaign driver for one workload. Prepares the golden
 * reference lazily and owns the comparison of run outputs.
 */
class InjectionCampaign
{
  public:
    /**
     * Build and prepare a campaign; a workload whose golden run does
     * not halt is a recoverable GoldenRunFailed error instead of a
     * process abort, so one broken workload degrades one cell.
     */
    static Expected<std::unique_ptr<InjectionCampaign>>
    create(workloads::Workload workload, sim::OooConfig cfg = {},
           mc::McConfig mcCfg = {});

    /**
     * Convenience constructor for known-good workloads: same
     * preparation, but a golden-run failure is fatal(). `mcCfg` only
     * matters for threaded workloads, which run on McSim with that
     * core count / quantum (both part of the cell's identity).
     */
    InjectionCampaign(workloads::Workload workload,
                      sim::OooConfig cfg = sim::OooConfig{},
                      mc::McConfig mcCfg = mc::McConfig{});

    /** Golden profile used by the models' planners. */
    const models::ProgramProfile &profile() const { return profile_; }
    /** Error-free cycle count (timeout threshold = 2x this). */
    uint64_t goldenCycles() const { return goldenCycles_; }
    uint64_t goldenInstructions() const
    {
        return profile_.totalInstructions;
    }

    /** Everything one injection run produces. */
    struct RunRecord
    {
        Outcome outcome = Outcome::Masked;
        uint64_t injected = 0;
        uint64_t committed = 0;
        uint64_t wrongPath = 0;
        /** Execution attempts this record took (1 = no retry). */
        uint32_t attempts = 1;
        /** Why outcome == EngineFault (None otherwise). */
        ErrorCode fault = ErrorCode::None;
        /**
         * Log likelihood-ratio weight of this run's injection plan
         * (0.0 — weight exactly 1 — for plain models). Journaled as an
         * exact bit pattern so replayed runs aggregate identically.
         */
        double logWeight = 0.0;
        /** Multi-core refinement (None for single-core runs). */
        McClass mcClass = McClass::None;
    };

    /** Durability and containment knobs for run(). */
    struct RunOptions
    {
        /** Worker pool (the global pool when null). */
        ThreadPool *pool = nullptr;
        /** Cooperative shutdown flag polled per run and in-sim. */
        const CancelToken *cancel = nullptr;
        /** Per-run wall-clock deadline in ms (<= 0 disables). */
        int64_t runDeadlineMs = 0;
        /** Containment attempts per run (>= 1). */
        int maxAttempts = kDefaultRunAttempts;
        /**
         * Journal replay hook: return true and fill the record if run
         * i already completed in a previous (interrupted) campaign.
         * Replayed runs execute nothing, which is what makes resume
         * bit-identical to an uninterrupted run.
         */
        std::function<bool(uint64_t, RunRecord &)> replay;
        /**
         * Called from worker threads as each freshly-executed run
         * completes (journal append point). Not called for replays.
         */
        std::function<void(uint64_t, const RunRecord &)> onComplete;
        /**
         * Adaptive stopping: when > 0, run() samples in deterministic
         * rounds and stops once the AVM's Wilson interval at ciConf is
         * tighter than this half-width — `runs` then acts as the cap.
         * Executed runs are always the prefix 0..N-1 of the fixed-size
         * campaign's run indices (run i draws from rng.fork(i) either
         * way), so adaptive results are a bit-exact subset of fixed
         * results and identical at every thread count. 0 = off.
         */
        double ciTarget = 0.0;
        /** Confidence level of the adaptive stopping interval. */
        double ciConf = 0.95;
        /** First adaptive round size in runs (0 = default of 64). */
        uint64_t initialRound = 0;
    };

    /**
     * Plan, inject, run, classify — one experiment. The single place
     * outcomes are classified; const and therefore safe to call
     * concurrently as long as each caller owns its Rng. May throw if
     * the model or engine faults — executeOneContained() wraps it.
     */
    RunRecord executeOne(const models::ErrorModel &model, Rng &rng,
                         const Watchdog *watchdog = nullptr) const;

    /**
     * executeOne with run-level containment: attempt `run`'s execution
     * up to opts.maxAttempts times (attempt 0 on the canonical
     * base.fork(run) substream, retries on deterministic re-forks),
     * returning an EngineFault record when containment is exhausted —
     * never throwing, never aborting.
     */
    RunRecord executeOneContained(const models::ErrorModel &model,
                                  const Rng &base, uint64_t run,
                                  const RunOptions &opts) const;

    /** Convenience wrapper around executeOne returning the outcome. */
    Outcome runOne(const models::ErrorModel &model, Rng &rng,
                   uint64_t *injectedOut = nullptr) const;

    /**
     * Run a full campaign cell. Runs are dispatched as independent
     * tasks on the pool; run i draws its injection plan from
     * rng.fork(i), so the aggregate is bit-identical for any thread
     * count — and, with the replay/onComplete hooks wired to a
     * journal, across interrupt/resume cycles too.
     */
    CampaignResult run(const models::ErrorModel &model, int runs,
                       Rng &rng, const RunOptions &opts) const;

    /** Back-compat overload: pool only, no containment hooks. */
    CampaignResult run(const models::ErrorModel &model, int runs,
                       Rng &rng, ThreadPool *pool = nullptr) const;

    /**
     * Execute only runs [lo, hi) of a fixed-size campaign, reporting
     * each completed record through opts.onComplete (typically a shard
     * journal) and returning how many were freshly executed. Run i
     * draws from the same fork(i) substream run() would give it, so a
     * cell split into ranges across fleet workers and re-assembled by
     * journal merge is bit-identical to the unsplit cell. No
     * aggregation happens here — that is the merger's job. Adaptive
     * stopping is a whole-cell property and does not apply to ranges.
     */
    uint64_t runRange(const models::ErrorModel &model, uint64_t lo,
                      uint64_t hi, Rng &rng,
                      const RunOptions &opts) const;

    const workloads::Workload &workload() const { return workload_; }

  private:
    struct Unprepared
    {
    };
    InjectionCampaign(Unprepared, workloads::Workload workload,
                      sim::OooConfig cfg, mc::McConfig mcCfg);

    /** Golden functional + detailed runs; the recoverable ctor body. */
    Error prepare();

    /** executeOne's multi-core path (threaded workloads). */
    RunRecord executeOneMc(const models::ErrorModel &model, Rng &rng,
                           const Watchdog *watchdog) const;

    /** Capture the checked output state of a finished simulation. */
    std::vector<uint8_t> outputSignature(const sim::Memory &mem,
                                         const sim::Console &console) const;

    workloads::Workload workload_;
    sim::OooConfig cfg_;
    mc::McConfig mcCfg_;
    models::ProgramProfile profile_;
    /** Per-core profiles (threaded only): plan "core k's n-th op". */
    std::vector<models::ProgramProfile> coreProfiles_;
    uint64_t goldenCycles_ = 0;
    std::vector<uint8_t> goldenSignature_;
};

} // namespace tea::inject

#endif // TEA_INJECT_CAMPAIGN_HH
