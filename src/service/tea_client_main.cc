/**
 * @file
 * `tea-client` — command-line front end for a running tea-daemon.
 *
 *     tea-client [--socket PATH | --tcp PORT] [--name NAME] CMD ...
 *
 *     submit <plan-file|->   admit a serialized FleetPlan; prints id
 *     status <id>            one-line state/progress snapshot
 *     watch <id>             stream cells to stdout until terminal
 *     cancel <id>            cancel a queued or running campaign
 *     drain                  ask the daemon to finish up and exit
 *
 * Exit codes: 0 success, 1 daemon-side error, 2 usage, 75 (EX_TEMPFAIL)
 * when the daemon answered RETRY_AFTER — scripts can back off and
 * resubmit. docs/PROTOCOL.md shows a worked transcript.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>

#include "models/error_models.hh"
#include "service/client.hh"
#include "util/fsatomic.hh"

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: tea-client [--socket PATH | --tcp PORT] [--name NAME]\n"
        "                  {submit <plan-file|-> | status <id> |\n"
        "                   watch <id> | cancel <id> | drain}\n");
}

int
failWith(const tea::service::Client::Error &err)
{
    std::fprintf(stderr, "tea-client: %s%s%s\n",
                 tea::service::errorCodeName(err.code),
                 err.detail.empty() ? "" : ": ",
                 err.detail.c_str());
    if (err.code == tea::service::ErrorCode::RetryAfter) {
        std::fprintf(stderr, "tea-client: retry after %lld ms\n",
                     static_cast<long long>(err.retryMs));
        return 75; // EX_TEMPFAIL
    }
    return 1;
}

bool
readAllStdin(std::string &out)
{
    char chunk[4096];
    size_t n;
    while ((n = std::fread(chunk, 1, sizeof(chunk), stdin)) > 0)
        out.append(chunk, n);
    return !std::ferror(stdin);
}

void
printStatus(uint64_t id, const tea::service::Client::Status &s)
{
    std::printf("id %llu state %s cells %llu/%llu%s\n",
                static_cast<unsigned long long>(id), s.state.c_str(),
                static_cast<unsigned long long>(s.cellsDone),
                static_cast<unsigned long long>(s.cellsTotal),
                s.interrupted ? " interrupted" : "");
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tea;
    std::string socketPath = "tea_daemon.sock";
    if (const char *v = std::getenv("REPRO_DAEMON_SOCKET"))
        socketPath = v;
    int tcpPort = -1;
    std::string name = "tea-client";
    int i = 1;
    for (; i < argc; ++i) {
        const char *a = argv[i];
        if (!std::strcmp(a, "--socket") && i + 1 < argc) {
            socketPath = argv[++i];
        } else if (!std::strcmp(a, "--tcp") && i + 1 < argc) {
            tcpPort = std::atoi(argv[++i]);
        } else if (!std::strcmp(a, "--name") && i + 1 < argc) {
            name = argv[++i];
        } else {
            break;
        }
    }
    if (i >= argc) {
        usage();
        return 2;
    }
    std::string cmd = argv[i++];

    auto client = tcpPort >= 0
                      ? service::Client::connectTcp(tcpPort, name)
                      : service::Client::connectUnix(socketPath, name);
    if (!client) {
        std::fprintf(stderr, "tea-client: cannot connect to %s\n",
                     tcpPort >= 0 ? "daemon tcp port"
                                  : socketPath.c_str());
        return 1;
    }

    if (cmd == "submit") {
        if (i >= argc) {
            usage();
            return 2;
        }
        std::string planBytes;
        std::string src = argv[i];
        if (src == "-") {
            if (!readAllStdin(planBytes)) {
                std::fprintf(stderr,
                             "tea-client: error reading stdin\n");
                return 1;
            }
        } else if (auto bytes = readFileToString(src)) {
            planBytes = std::move(*bytes);
        } else {
            std::fprintf(stderr, "tea-client: cannot read '%s'\n",
                         src.c_str());
            return 1;
        }
        service::Client::Submitted sub;
        if (!client->submit(planBytes, sub))
            return failWith(client->lastError());
        std::printf("id %llu deduped %d cells %llu\n",
                    static_cast<unsigned long long>(sub.id),
                    sub.deduped ? 1 : 0,
                    static_cast<unsigned long long>(sub.cellsTotal));
        return 0;
    }
    if (cmd == "status" || cmd == "watch" || cmd == "cancel") {
        if (i >= argc) {
            usage();
            return 2;
        }
        uint64_t id = std::strtoull(argv[i], nullptr, 10);
        service::Client::Status st;
        if (cmd == "status") {
            if (!client->status(id, st))
                return failWith(client->lastError());
            printStatus(id, st);
            return 0;
        }
        if (cmd == "cancel") {
            if (!client->cancel(id, st))
                return failWith(client->lastError());
            printStatus(id, st);
            return 0;
        }
        // watch
        if (!client->watch(
                id,
                [](const core::CampaignCell &cell) {
                    std::printf("cell %s %s vr %.4f runs %llu masked "
                                "%llu sdc %llu crash %llu timeout "
                                "%llu fault %llu\n",
                                cell.workload.c_str(),
                                models::modelKindName(cell.model),
                                cell.vrFrac,
                                static_cast<unsigned long long>(
                                    cell.result.runs),
                                static_cast<unsigned long long>(
                                    cell.result.masked),
                                static_cast<unsigned long long>(
                                    cell.result.sdc),
                                static_cast<unsigned long long>(
                                    cell.result.crash),
                                static_cast<unsigned long long>(
                                    cell.result.timeout),
                                static_cast<unsigned long long>(
                                    cell.result.engineFault));
                },
                st))
            return failWith(client->lastError());
        printStatus(id, st);
        return st.state == "done" ? 0 : 1;
    }
    if (cmd == "drain") {
        if (!client->drain())
            return failWith(client->lastError());
        std::printf("draining\n");
        return 0;
    }
    usage();
    return 2;
}
