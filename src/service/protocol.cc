#include "service/protocol.hh"

#include <cstring>
#include <sstream>

#include "util/crc32.hh"

namespace tea::service {

namespace {

void
putU16(std::string &out, uint16_t v)
{
    out.push_back(static_cast<char>(v & 0xff));
    out.push_back(static_cast<char>((v >> 8) & 0xff));
}

void
putU32(std::string &out, uint32_t v)
{
    for (int i = 0; i < 4; ++i)
        out.push_back(static_cast<char>((v >> (8 * i)) & 0xff));
}

uint16_t
getU16(std::string_view buf, size_t at)
{
    return static_cast<uint16_t>(
        static_cast<uint8_t>(buf[at]) |
        (static_cast<uint8_t>(buf[at + 1]) << 8));
}

uint32_t
getU32(std::string_view buf, size_t at)
{
    uint32_t v = 0;
    for (int i = 3; i >= 0; --i)
        v = (v << 8) | static_cast<uint8_t>(buf[at + i]);
    return v;
}

} // namespace

bool
knownMsgType(uint16_t raw)
{
    switch (static_cast<MsgType>(raw)) {
      case MsgType::Hello:
      case MsgType::Submit:
      case MsgType::Status:
      case MsgType::Watch:
      case MsgType::Cancel:
      case MsgType::Drain:
      case MsgType::HelloOk:
      case MsgType::SubmitOk:
      case MsgType::StatusOk:
      case MsgType::Cell:
      case MsgType::Done:
      case MsgType::Error:
        return true;
    }
    return false;
}

const char *
msgTypeName(MsgType t)
{
    switch (t) {
      case MsgType::Hello: return "HELLO";
      case MsgType::Submit: return "SUBMIT";
      case MsgType::Status: return "STATUS";
      case MsgType::Watch: return "WATCH";
      case MsgType::Cancel: return "CANCEL";
      case MsgType::Drain: return "DRAIN";
      case MsgType::HelloOk: return "HELLO_OK";
      case MsgType::SubmitOk: return "SUBMIT_OK";
      case MsgType::StatusOk: return "STATUS_OK";
      case MsgType::Cell: return "CELL";
      case MsgType::Done: return "DONE";
      case MsgType::Error: return "ERROR";
    }
    return "UNKNOWN";
}

const char *
errorCodeName(ErrorCode c)
{
    switch (c) {
      case ErrorCode::BadRequest: return "BAD_REQUEST";
      case ErrorCode::VersionSkew: return "VERSION_SKEW";
      case ErrorCode::NotFound: return "NOT_FOUND";
      case ErrorCode::RetryAfter: return "RETRY_AFTER";
      case ErrorCode::InflightLimit: return "INFLIGHT_LIMIT";
      case ErrorCode::ShuttingDown: return "SHUTTING_DOWN";
      case ErrorCode::Internal: return "INTERNAL";
    }
    return "INTERNAL";
}

bool
errorCodeFromName(const std::string &name, ErrorCode &out)
{
    for (uint16_t raw = 1; raw <= 7; ++raw) {
        ErrorCode c = static_cast<ErrorCode>(raw);
        if (name == errorCodeName(c)) {
            out = c;
            return true;
        }
    }
    return false;
}

std::string
encodeFrame(MsgType type, std::string_view payload)
{
    std::string frame;
    frame.reserve(kFrameHeaderSize + payload.size() + 4);
    frame.append(kFrameMagic, sizeof(kFrameMagic));
    putU16(frame, kProtocolVersion);
    putU16(frame, static_cast<uint16_t>(type));
    putU32(frame, static_cast<uint32_t>(payload.size()));
    frame.append(payload.data(), payload.size());
    putU32(frame, crc32(frame.data(), frame.size()));
    return frame;
}

DecodeStatus
decodeFrame(std::string_view buf, Frame &out, size_t &consumed)
{
    if (buf.size() < kFrameHeaderSize)
        return DecodeStatus::NeedMore;
    if (std::memcmp(buf.data(), kFrameMagic, sizeof(kFrameMagic)) != 0)
        return DecodeStatus::Bad;
    uint32_t len = getU32(buf, 8);
    if (len > kMaxPayload)
        return DecodeStatus::Bad;
    size_t total = kFrameHeaderSize + len + 4;
    if (buf.size() < total)
        return DecodeStatus::NeedMore;
    uint32_t stored = getU32(buf, kFrameHeaderSize + len);
    if (crc32(buf.data(), kFrameHeaderSize + len) != stored)
        return DecodeStatus::Bad;
    out.version = getU16(buf, 4);
    out.type = getU16(buf, 6);
    out.payload.assign(buf.data() + kFrameHeaderSize, len);
    consumed = total;
    // The CRC already proved the frame intact, so a version mismatch
    // is genuine skew (an old client or a new daemon), reportable with
    // a structured Error instead of a cut connection.
    return out.version == kProtocolVersion ? DecodeStatus::Ok
                                           : DecodeStatus::VersionSkew;
}

std::map<std::string, std::string>
parseKv(const std::string &body)
{
    std::map<std::string, std::string> kv;
    std::istringstream in(body);
    std::string line;
    while (std::getline(in, line)) {
        if (line.empty())
            continue;
        size_t sp = line.find(' ');
        std::string key = line.substr(0, sp);
        std::string value =
            sp == std::string::npos ? "" : line.substr(sp + 1);
        kv.emplace(std::move(key), std::move(value));
    }
    return kv;
}

std::string
kvLine(const std::string &key, const std::string &value)
{
    return key + " " + value + "\n";
}

std::string
kvLine(const std::string &key, uint64_t value)
{
    return key + " " + std::to_string(value) + "\n";
}

} // namespace tea::service
