#include "service/client.hh"

#include <cstdlib>

#include "service/cellwire.hh"
#include "util/logging.hh"

namespace tea::service {

namespace {

uint64_t
kvU64(const std::map<std::string, std::string> &kv, const char *key)
{
    auto it = kv.find(key);
    return it == kv.end()
               ? 0
               : std::strtoull(it->second.c_str(), nullptr, 10);
}

Client::Status
statusFromKv(const std::map<std::string, std::string> &kv)
{
    Client::Status s;
    auto it = kv.find("state");
    if (it != kv.end())
        s.state = it->second;
    s.cellsDone = kvU64(kv, "cells");
    s.cellsTotal = kvU64(kv, "total");
    s.interrupted = kvU64(kv, "interrupted") != 0;
    return s;
}

} // namespace

std::optional<Client>
Client::connectUnix(const std::string &path, const std::string &name)
{
    auto sock = Socket::connectUnix(path);
    if (!sock)
        return std::nullopt;
    Client c(std::move(*sock));
    if (!c.hello(name))
        return std::nullopt;
    return c;
}

std::optional<Client>
Client::connectTcp(int port, const std::string &name)
{
    auto sock = Socket::connectTcp(port);
    if (!sock)
        return std::nullopt;
    Client c(std::move(*sock));
    if (!c.hello(name))
        return std::nullopt;
    return c;
}

bool
Client::hello(const std::string &name)
{
    std::string body;
    if (!name.empty())
        body = kvLine("client", name);
    Frame resp;
    return roundTrip(MsgType::Hello, body, MsgType::HelloOk, resp);
}

bool
Client::recvOne(Frame &resp)
{
    RecvStatus st = recvFrame(sock_, buf_, resp, -1);
    if (st != RecvStatus::Ok && st != RecvStatus::VersionSkew) {
        err_ = Error{ErrorCode::Internal, 0, "connection lost"};
        return false;
    }
    return true;
}

bool
Client::roundTrip(MsgType type, const std::string &payload,
                  MsgType expect, Frame &resp)
{
    if (!sendFrame(sock_, type, payload)) {
        err_ = Error{ErrorCode::Internal, 0, "send failed"};
        return false;
    }
    if (!recvOne(resp))
        return false;
    if (resp.type == static_cast<uint16_t>(MsgType::Error)) {
        auto kv = parseKv(resp.payload);
        err_ = Error{};
        auto it = kv.find("code");
        if (it == kv.end() ||
            !errorCodeFromName(it->second, err_.code))
            err_.code = ErrorCode::Internal;
        err_.retryMs =
            static_cast<int64_t>(kvU64(kv, "retryms"));
        auto dt = kv.find("detail");
        if (dt != kv.end())
            err_.detail = dt->second;
        return false;
    }
    if (resp.type != static_cast<uint16_t>(expect)) {
        err_ = Error{ErrorCode::Internal, 0,
                     "unexpected response type"};
        return false;
    }
    return true;
}

bool
Client::submit(const std::string &planBytes, Submitted &out)
{
    Frame resp;
    if (!roundTrip(MsgType::Submit, planBytes, MsgType::SubmitOk,
                   resp))
        return false;
    auto kv = parseKv(resp.payload);
    out.id = kvU64(kv, "id");
    out.deduped = kvU64(kv, "deduped") != 0;
    out.cellsTotal = kvU64(kv, "cells");
    return true;
}

bool
Client::status(uint64_t id, Status &out)
{
    Frame resp;
    if (!roundTrip(MsgType::Status, kvLine("id", id),
                   MsgType::StatusOk, resp))
        return false;
    out = statusFromKv(parseKv(resp.payload));
    return true;
}

bool
Client::watch(
    uint64_t id,
    const std::function<void(const core::CampaignCell &)> &onCell,
    Status &final)
{
    std::string body = kvLine("id", id);
    body += kvLine("from", uint64_t(0));
    if (!sendFrame(sock_, MsgType::Watch, body)) {
        err_ = Error{ErrorCode::Internal, 0, "send failed"};
        return false;
    }
    for (;;) {
        Frame resp;
        if (!recvOne(resp))
            return false;
        if (resp.type == static_cast<uint16_t>(MsgType::Cell)) {
            core::CampaignCell cell;
            if (!cellFromKv(parseKv(resp.payload), cell)) {
                err_ = Error{ErrorCode::Internal, 0,
                             "malformed cell frame"};
                return false;
            }
            if (onCell)
                onCell(cell);
            continue;
        }
        if (resp.type == static_cast<uint16_t>(MsgType::Done)) {
            final = statusFromKv(parseKv(resp.payload));
            return true;
        }
        if (resp.type == static_cast<uint16_t>(MsgType::Error)) {
            auto kv = parseKv(resp.payload);
            err_ = Error{};
            auto it = kv.find("code");
            if (it == kv.end() ||
                !errorCodeFromName(it->second, err_.code))
                err_.code = ErrorCode::Internal;
            auto dt = kv.find("detail");
            if (dt != kv.end())
                err_.detail = dt->second;
            return false;
        }
        err_ = Error{ErrorCode::Internal, 0,
                     "unexpected frame in watch stream"};
        return false;
    }
}

bool
Client::cancel(uint64_t id, Status &out)
{
    Frame resp;
    if (!roundTrip(MsgType::Cancel, kvLine("id", id),
                   MsgType::StatusOk, resp))
        return false;
    out = statusFromKv(parseKv(resp.payload));
    return true;
}

bool
Client::drain()
{
    Frame resp;
    return roundTrip(MsgType::Drain, "", MsgType::StatusOk, resp);
}

} // namespace tea::service
