#include "service/socketio.hh"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <poll.h>
#include <sys/socket.h>
#include <sys/un.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>

#include "util/logging.hh"

namespace tea::service {

namespace {

/** poll(2) one fd for readability; EINTR-safe. */
int
pollRead(int fd, int timeoutMs)
{
    struct pollfd p;
    p.fd = fd;
    p.events = POLLIN;
    p.revents = 0;
    for (;;) {
        int r = ::poll(&p, 1, timeoutMs);
        if (r >= 0 || errno != EINTR)
            return r;
    }
}

} // namespace

Socket &
Socket::operator=(Socket &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        other.fd_ = -1;
    }
    return *this;
}

void
Socket::close()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
}

bool
Socket::sendAll(std::string_view bytes)
{
    size_t off = 0;
    while (off < bytes.size()) {
        // MSG_NOSIGNAL: a client that vanished mid-stream must surface
        // as EPIPE, not kill the daemon with SIGPIPE.
        ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                           MSG_NOSIGNAL);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            return false;
        }
        off += static_cast<size_t>(n);
    }
    return true;
}

long
Socket::recvSome(std::string &buf, int timeoutMs)
{
    if (timeoutMs >= 0) {
        int r = pollRead(fd_, timeoutMs);
        if (r == 0)
            return -2;
        if (r < 0)
            return -1;
    }
    char chunk[4096];
    for (;;) {
        ssize_t n = ::recv(fd_, chunk, sizeof(chunk), 0);
        if (n < 0 && errno == EINTR)
            continue;
        if (n < 0)
            return -1;
        if (n > 0)
            buf.append(chunk, static_cast<size_t>(n));
        return n;
    }
}

std::optional<Socket>
Socket::connectUnix(const std::string &path)
{
    struct sockaddr_un addr;
    if (path.size() >= sizeof(addr.sun_path))
        return std::nullopt;
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0)
        return std::nullopt;
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    int r;
    do {
        r = ::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof(addr));
    } while (r < 0 && errno == EINTR);
    if (r < 0) {
        ::close(fd);
        return std::nullopt;
    }
    return Socket(fd);
}

std::optional<Socket>
Socket::connectTcp(int port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0)
        return std::nullopt;
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    int r;
    do {
        r = ::connect(fd, reinterpret_cast<struct sockaddr *>(&addr),
                      sizeof(addr));
    } while (r < 0 && errno == EINTR);
    if (r < 0) {
        ::close(fd);
        return std::nullopt;
    }
    return Socket(fd);
}

Listener::Listener(Listener &&other) noexcept
    : fd_(other.fd_), port_(other.port_),
      unlinkPath_(std::move(other.unlinkPath_))
{
    other.fd_ = -1;
    other.unlinkPath_.clear();
}

Listener &
Listener::operator=(Listener &&other) noexcept
{
    if (this != &other) {
        close();
        fd_ = other.fd_;
        port_ = other.port_;
        unlinkPath_ = std::move(other.unlinkPath_);
        other.fd_ = -1;
        other.unlinkPath_.clear();
    }
    return *this;
}

void
Listener::close()
{
    if (fd_ >= 0)
        ::close(fd_);
    fd_ = -1;
    if (!unlinkPath_.empty())
        ::unlink(unlinkPath_.c_str());
    unlinkPath_.clear();
}

std::optional<Listener>
Listener::listenUnix(const std::string &path)
{
    struct sockaddr_un addr;
    if (path.size() >= sizeof(addr.sun_path)) {
        warn("daemon: socket path too long: '%s'", path.c_str());
        return std::nullopt;
    }
    int fd = ::socket(AF_UNIX, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("daemon: socket(AF_UNIX): %s", std::strerror(errno));
        return std::nullopt;
    }
    std::memset(&addr, 0, sizeof(addr));
    addr.sun_family = AF_UNIX;
    std::memcpy(addr.sun_path, path.c_str(), path.size() + 1);
    ::unlink(path.c_str()); // stale socket from a dead daemon
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd, 64) < 0) {
        warn("daemon: cannot listen on '%s': %s", path.c_str(),
             std::strerror(errno));
        ::close(fd);
        return std::nullopt;
    }
    Listener l;
    l.fd_ = fd;
    l.unlinkPath_ = path;
    return l;
}

std::optional<Listener>
Listener::listenTcp(int port)
{
    int fd = ::socket(AF_INET, SOCK_STREAM, 0);
    if (fd < 0) {
        warn("daemon: socket(AF_INET): %s", std::strerror(errno));
        return std::nullopt;
    }
    int one = 1;
    ::setsockopt(fd, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));
    struct sockaddr_in addr;
    std::memset(&addr, 0, sizeof(addr));
    addr.sin_family = AF_INET;
    // Loopback only: the protocol has no authentication; exposing it
    // beyond the host is an operator decision (ssh tunnel, proxy).
    addr.sin_addr.s_addr = htonl(INADDR_LOOPBACK);
    addr.sin_port = htons(static_cast<uint16_t>(port));
    if (::bind(fd, reinterpret_cast<struct sockaddr *>(&addr),
               sizeof(addr)) < 0 ||
        ::listen(fd, 64) < 0) {
        warn("daemon: cannot listen on 127.0.0.1:%d: %s", port,
             std::strerror(errno));
        ::close(fd);
        return std::nullopt;
    }
    socklen_t len = sizeof(addr);
    ::getsockname(fd, reinterpret_cast<struct sockaddr *>(&addr),
                  &len);
    Listener l;
    l.fd_ = fd;
    l.port_ = ntohs(addr.sin_port);
    return l;
}

std::optional<Socket>
Listener::accept(int timeoutMs)
{
    int r = pollRead(fd_, timeoutMs);
    if (r <= 0)
        return std::nullopt;
    for (;;) {
        int fd = ::accept(fd_, nullptr, nullptr);
        if (fd < 0 && errno == EINTR)
            continue;
        if (fd < 0)
            return std::nullopt;
        return Socket(fd);
    }
}

bool
sendFrame(Socket &sock, MsgType type, std::string_view payload)
{
    return sock.sendAll(encodeFrame(type, payload));
}

RecvStatus
recvFrame(Socket &sock, std::string &buf, Frame &out, int timeoutMs)
{
    for (;;) {
        size_t consumed = 0;
        switch (decodeFrame(buf, out, consumed)) {
          case DecodeStatus::Ok:
            buf.erase(0, consumed);
            return RecvStatus::Ok;
          case DecodeStatus::VersionSkew:
            buf.erase(0, consumed);
            return RecvStatus::VersionSkew;
          case DecodeStatus::Bad:
            return RecvStatus::Bad;
          case DecodeStatus::NeedMore:
            break;
        }
        long n = sock.recvSome(buf, timeoutMs);
        if (n == 0 || n == -1)
            return RecvStatus::Closed;
        if (n == -2)
            return RecvStatus::Timeout;
    }
}

} // namespace tea::service
