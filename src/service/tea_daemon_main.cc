/**
 * @file
 * `tea-daemon` — the standalone campaign service.
 *
 * Binds the Unix-domain socket (and optionally loopback TCP), serves
 * campaign submissions until SIGINT/SIGTERM or a DRAIN request, and
 * exits 0 once drained. Configuration comes from REPRO_DAEMON_* /
 * REPRO_FLEET_* (docs/OPERATIONS.md) with command-line overrides.
 */

#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <thread>

#include "obs/obs.hh"
#include "service/daemon.hh"
#include "util/watchdog.hh"

namespace {

void
usage()
{
    std::fprintf(
        stderr,
        "usage: tea-daemon [--socket PATH] [--tcp PORT] [--queue N]\n"
        "                  [--concurrency N] [--inflight N]\n"
        "                  [--workers N] [--spool DIR]\n"
        "\n"
        "Defaults come from REPRO_DAEMON_* / REPRO_FLEET_* env vars\n"
        "(see docs/OPERATIONS.md); flags override them.\n");
}

bool
intArg(const char *flag, const char *value, int lo, int hi, int &out)
{
    if (!value)
        return false;
    char *end = nullptr;
    long v = std::strtol(value, &end, 10);
    if (end == value || *end != '\0' || v < lo || v > hi) {
        std::fprintf(stderr, "tea-daemon: bad %s value '%s'\n", flag,
                     value);
        return false;
    }
    out = static_cast<int>(v);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    using namespace tea;
    service::DaemonOptions opt = service::daemonOptionsFromEnv();
    for (int i = 1; i < argc; ++i) {
        const char *a = argv[i];
        const char *v = i + 1 < argc ? argv[i + 1] : nullptr;
        if (!std::strcmp(a, "--socket") && v) {
            opt.socketPath = v;
            ++i;
        } else if (!std::strcmp(a, "--tcp")) {
            if (!intArg(a, v, 0, 65535, opt.tcpPort))
                return 2;
            ++i;
        } else if (!std::strcmp(a, "--queue")) {
            if (!intArg(a, v, 1, 4096, opt.queueCap))
                return 2;
            ++i;
        } else if (!std::strcmp(a, "--concurrency")) {
            if (!intArg(a, v, 1, 64, opt.concurrency))
                return 2;
            ++i;
        } else if (!std::strcmp(a, "--inflight")) {
            if (!intArg(a, v, 1, 4096, opt.clientInflight))
                return 2;
            ++i;
        } else if (!std::strcmp(a, "--workers")) {
            if (!intArg(a, v, 0, 256, opt.fleet.workers))
                return 2;
            ++i;
        } else if (!std::strcmp(a, "--spool") && v) {
            opt.spoolRoot = v;
            ++i;
        } else {
            usage();
            return 2;
        }
    }

    installShutdownHandlers();
    obs::configureFromEnv();

    service::ServiceDaemon daemon(opt);
    if (!daemon.start())
        return 1;
    std::fprintf(stderr, "tea-daemon: serving on %s%s\n",
                 daemon.socketPath().c_str(),
                 daemon.tcpPort() > 0 ? " (+tcp)" : "");
    if (daemon.tcpPort() > 0)
        std::fprintf(stderr, "tea-daemon: tcp port %d\n",
                     daemon.tcpPort());

    const CancelToken &cancel = CancelToken::processWide();
    while (!cancel.cancelled()) {
        if (daemon.drainRequested()) {
            daemon.awaitDrained();
            break;
        }
        std::this_thread::sleep_for(std::chrono::milliseconds(100));
    }
    daemon.stop();
    obs::flush();
    return 0;
}
