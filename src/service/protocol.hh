/**
 * @file
 * The tea-daemon wire protocol: CRC-framed, versioned request/response
 * messages. docs/PROTOCOL.md is the normative spec; this header is the
 * single code-side source of truth for message types and error codes
 * (scripts/check_docs.sh greps the enums below against the doc's
 * tables, so the two cannot drift).
 *
 * Frame layout (little-endian):
 *
 *     offset  size  field
 *     0       4     magic "TEAF"
 *     4       2     protocol version (kProtocolVersion)
 *     6       2     message type (MsgType)
 *     8       4     payload length (<= kMaxPayload)
 *     12      n     payload bytes
 *     12+n    4     CRC-32 over bytes [0, 12+n)
 *
 * Payloads are the repo's established `key value` line format (one
 * key, space, rest-of-line value; unknown keys ignored) — the same
 * convention the fleet spool files use, minus the `crc` seal line
 * because the frame trailer already covers the payload. A SUBMIT
 * payload is a complete serialized FleetPlan (which *does* carry its
 * own seal; it is stored verbatim as the spool's plan.tfp).
 */

#ifndef TEA_SERVICE_PROTOCOL_HH
#define TEA_SERVICE_PROTOCOL_HH

#include <cstdint>
#include <map>
#include <string>
#include <string_view>

namespace tea::service {

/** First frame bytes; a connection speaking anything else is cut. */
inline constexpr char kFrameMagic[4] = {'T', 'E', 'A', 'F'};
/** Protocol revision; bumped on any incompatible frame/payload change. */
inline constexpr uint16_t kProtocolVersion = 1;
/** Frame bytes before the payload (magic + version + type + length). */
inline constexpr size_t kFrameHeaderSize = 12;
/** Hard cap on payload size — a garbage length field must not OOM. */
inline constexpr size_t kMaxPayload = 16u << 20;

/**
 * Message types. Requests (client -> daemon) occupy [1, 63], responses
 * (daemon -> client) [64, 127]; the split leaves room for both sides
 * to grow without renumbering.
 */
enum class MsgType : uint16_t
{
    // ---- requests ---------------------------------------------------
    Hello = 1,  ///< version/feature negotiation; first on a connection
    Submit = 2, ///< submit a campaign (payload: serialized FleetPlan)
    Status = 3, ///< poll one campaign's state and progress
    Watch = 4,  ///< stream per-cell results as they merge
    Cancel = 5, ///< stop a queued or running campaign
    Drain = 6,  ///< finish active campaigns, reject new, then exit
    // ---- responses --------------------------------------------------
    HelloOk = 64,  ///< negotiated version + feature list
    SubmitOk = 65, ///< campaign accepted (or deduplicated): its id
    StatusOk = 66, ///< state/progress snapshot
    Cell = 67,     ///< one completed grid cell (Watch stream element)
    Done = 68,     ///< terminal Watch frame: final state + cell count
    Error = 69,    ///< request failed: ErrorCode + detail
};

/** True for the exact values the enum names (both directions). */
bool knownMsgType(uint16_t raw);
/** Stable wire/debug name ("SUBMIT", "RETRY_AFTER" style). */
const char *msgTypeName(MsgType t);

/** Error codes carried by Error frames (`code` key, wire-name value). */
enum class ErrorCode : uint16_t
{
    BadRequest = 1,    ///< malformed payload or unknown message type
    VersionSkew = 2,   ///< frame version != daemon version
    NotFound = 3,      ///< no such campaign id
    RetryAfter = 4,    ///< admission queue full; retry after `retryms`
    InflightLimit = 5, ///< this client's in-flight campaign cap hit
    ShuttingDown = 6,  ///< daemon is draining; submit elsewhere
    Internal = 7,      ///< daemon-side failure (spool, plan, executor)
};

const char *errorCodeName(ErrorCode c);
/** Parse a wire name back to the code; false when unknown. */
bool errorCodeFromName(const std::string &name, ErrorCode &out);

/** One decoded frame. `type` is raw: the peer may speak future types. */
struct Frame
{
    uint16_t version = kProtocolVersion;
    uint16_t type = 0;
    std::string payload;
};

/** Wrap a payload into a sealed frame, ready to send. */
std::string encodeFrame(MsgType type, std::string_view payload);

enum class DecodeStatus
{
    Ok,          ///< one whole valid frame decoded; `consumed` advanced
    NeedMore,    ///< prefix of a frame; read more bytes and retry
    Bad,         ///< structurally invalid (magic/length/CRC): cut the
                 ///< connection — framing is lost
    VersionSkew, ///< valid frame, wrong protocol version
};

/**
 * Decode the first frame in `buf`. On Ok (and VersionSkew, whose frame
 * is structurally sound) `out` is filled and `consumed` is the frame's
 * total size; otherwise both are untouched.
 */
DecodeStatus decodeFrame(std::string_view buf, Frame &out,
                         size_t &consumed);

// ---- key=value payload helpers -------------------------------------

/** Parse a payload into its key -> value map (first key wins). */
std::map<std::string, std::string> parseKv(const std::string &body);
/** One `key value` line (value may be empty, may not contain '\n'). */
std::string kvLine(const std::string &key, const std::string &value);
std::string kvLine(const std::string &key, uint64_t value);

} // namespace tea::service

#endif // TEA_SERVICE_PROTOCOL_HH
