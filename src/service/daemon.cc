#include "service/daemon.hh"

#include <sstream>

#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "service/cellwire.hh"
#include "util/logging.hh"

namespace tea::service {

namespace {

/** Per-connection recv timeout: the serve loop's shutdown poll rate. */
constexpr int kRecvTimeoutMs = 250;

obs::Counter
requestCounter(MsgType t)
{
    std::string label = std::string("type=\"") + msgTypeName(t) + "\"";
    return obs::Registry::global().counter(
        obs::metric::kDaemonRequests, label,
        "requests dispatched, by message type");
}

bool
sendError(Socket &sock, ErrorCode code, const std::string &detail,
          int64_t retryMs = 0)
{
    std::string body = kvLine("code", errorCodeName(code));
    if (retryMs > 0)
        body += kvLine("retryms", static_cast<uint64_t>(retryMs));
    if (!detail.empty())
        body += kvLine("detail", detail);
    return sendFrame(sock, MsgType::Error, body);
}

std::string
progressBody(uint64_t id, const Scheduler::Progress &p)
{
    std::string body = kvLine("id", id);
    body += kvLine("state", campaignStateName(p.state));
    body += kvLine("cells", p.cellsDone);
    body += kvLine("total", p.cellsTotal);
    body += kvLine("interrupted", uint64_t(p.interrupted ? 1 : 0));
    return body;
}

/** Parse the campaign id out of a request payload; false if absent. */
bool
parseId(const std::map<std::string, std::string> &kv, uint64_t &id)
{
    auto it = kv.find("id");
    if (it == kv.end())
        return false;
    char *end = nullptr;
    id = std::strtoull(it->second.c_str(), &end, 10);
    return end != it->second.c_str();
}

} // namespace

ServiceDaemon::ServiceDaemon(DaemonOptions opt)
    : opt_(opt), sched_(std::move(opt))
{
}

ServiceDaemon::~ServiceDaemon() { stop(); }

bool
ServiceDaemon::start()
{
    auto uds = Listener::listenUnix(opt_.socketPath);
    if (!uds) {
        warn("tea-daemon: cannot listen on %s", opt_.socketPath.c_str());
        return false;
    }
    listeners_.push_back(std::move(*uds));
    if (opt_.tcpPort >= 0) {
        auto tcp = Listener::listenTcp(opt_.tcpPort);
        if (!tcp) {
            warn("tea-daemon: cannot listen on 127.0.0.1:%d",
                 opt_.tcpPort);
            listeners_.clear();
            return false;
        }
        tcpPort_ = tcp->port();
        listeners_.push_back(std::move(*tcp));
    }
    for (auto &l : listeners_)
        acceptThreads_.emplace_back(
            [this, lp = &l] { acceptLoop(std::move(*lp)); });
    return true;
}

void
ServiceDaemon::stop()
{
    bool was = stopping_.exchange(true);
    sched_.stop();
    if (was) // idempotent: a second stop only re-joins (no-op) below
        return;
    for (auto &t : acceptThreads_)
        if (t.joinable())
            t.join();
    acceptThreads_.clear();
    listeners_.clear();
    std::vector<std::thread> conns;
    {
        std::lock_guard<std::mutex> lock(connMu_);
        conns.swap(connThreads_);
    }
    for (auto &t : conns)
        if (t.joinable())
            t.join();
}

void
ServiceDaemon::drain()
{
    drainRequested_.store(true, std::memory_order_relaxed);
    sched_.drain();
}

void
ServiceDaemon::awaitDrained()
{
    sched_.awaitIdle();
}

void
ServiceDaemon::acceptLoop(Listener listener)
{
    auto connections = obs::Registry::global().counter(
        obs::metric::kDaemonConnections, "",
        "client connections accepted");
    while (!stopping_.load(std::memory_order_relaxed)) {
        auto sock = listener.accept(kRecvTimeoutMs);
        if (!sock)
            continue;
        connections.inc();
        std::lock_guard<std::mutex> lock(connMu_);
        connThreads_.emplace_back(
            [this, s = std::move(*sock)]() mutable {
                serveConnection(std::move(s));
            });
    }
}

void
ServiceDaemon::serveConnection(Socket sock)
{
    auto badFrames = obs::Registry::global().counter(
        obs::metric::kDaemonBadFrames, "",
        "structurally invalid frames (connection cut)");
    std::string buf;
    std::string client = "anon";
    Frame req;
    while (!stopping_.load(std::memory_order_relaxed)) {
        RecvStatus st = recvFrame(sock, buf, req, kRecvTimeoutMs);
        if (st == RecvStatus::Timeout)
            continue;
        if (st == RecvStatus::Closed)
            return;
        if (st == RecvStatus::Bad) {
            // Framing is lost: answer best-effort, then cut.
            badFrames.inc();
            sendError(sock, ErrorCode::BadRequest,
                      "unrecognized or corrupt frame");
            return;
        }
        if (st == RecvStatus::VersionSkew) {
            // The frame itself was sound (CRC passed), so the stream
            // is still in sync — reject the request, keep listening.
            sendError(sock, ErrorCode::VersionSkew,
                      std::string("daemon speaks version ") +
                          std::to_string(kProtocolVersion));
            continue;
        }
        if (!knownMsgType(req.type) ||
            req.type >= static_cast<uint16_t>(MsgType::HelloOk)) {
            sendError(sock, ErrorCode::BadRequest,
                      "unknown or non-request message type");
            continue;
        }
        MsgType type = static_cast<MsgType>(req.type);
        requestCounter(type).inc();
        switch (type) {
          case MsgType::Hello: {
            auto kv = parseKv(req.payload);
            auto it = kv.find("client");
            if (it != kv.end() && !it->second.empty())
                client = it->second;
            std::string body =
                kvLine("version", uint64_t(kProtocolVersion));
            body += kvLine("features",
                           "submit status watch cancel drain");
            if (!sendFrame(sock, MsgType::HelloOk, body))
                return;
            break;
          }
          case MsgType::Submit: {
            auto res = sched_.submit(req.payload, client);
            if (!res.accepted) {
                if (!sendError(sock, res.rej.code, res.rej.detail,
                               res.rej.retryMs))
                    return;
                break;
            }
            std::string body = kvLine("id", res.sub.id);
            body += kvLine("deduped",
                           uint64_t(res.sub.deduped ? 1 : 0));
            body += kvLine("cells", res.sub.cellsTotal);
            if (!sendFrame(sock, MsgType::SubmitOk, body))
                return;
            break;
          }
          case MsgType::Status: {
            auto kv = parseKv(req.payload);
            uint64_t id = 0;
            std::optional<Scheduler::Progress> p;
            if (parseId(kv, id))
                p = sched_.status(id);
            if (!p) {
                if (!sendError(sock, ErrorCode::NotFound,
                               "no such campaign"))
                    return;
                break;
            }
            if (!sendFrame(sock, MsgType::StatusOk,
                           progressBody(id, *p)))
                return;
            break;
          }
          case MsgType::Watch: {
            auto kv = parseKv(req.payload);
            uint64_t id = 0;
            if (!parseId(kv, id) || !sched_.status(id)) {
                if (!sendError(sock, ErrorCode::NotFound,
                               "no such campaign"))
                    return;
                break;
            }
            uint64_t cursor = 0;
            auto fromIt = kv.find("from");
            if (fromIt != kv.end())
                cursor = std::strtoull(fromIt->second.c_str(),
                                       nullptr, 10);
            auto streamed = obs::Registry::global().counter(
                obs::metric::kDaemonCellsStreamed, "",
                "cell frames streamed to watchers");
            bool done = false;
            while (!done &&
                   !stopping_.load(std::memory_order_relaxed)) {
                Scheduler::Event ev;
                if (!sched_.next(id, cursor, kRecvTimeoutMs, ev))
                    return; // campaign vanished (daemon stopping)
                if (ev.haveCell) {
                    std::string body = kvLine("id", id);
                    body += kvLine("index", cursor);
                    body += cellToKv(ev.cell);
                    if (!sendFrame(sock, MsgType::Cell, body))
                        return;
                    streamed.inc();
                    ++cursor;
                    continue;
                }
                if (ev.terminal) {
                    if (!sendFrame(sock, MsgType::Done,
                                   progressBody(id, ev.progress)))
                        return;
                    done = true;
                }
            }
            break;
          }
          case MsgType::Cancel: {
            auto kv = parseKv(req.payload);
            uint64_t id = 0;
            if (!parseId(kv, id) || !sched_.cancel(id)) {
                if (!sendError(sock, ErrorCode::NotFound,
                               "no such campaign"))
                    return;
                break;
            }
            auto p = sched_.status(id);
            std::string body =
                p ? progressBody(id, *p) : kvLine("id", id);
            if (!sendFrame(sock, MsgType::StatusOk, body))
                return;
            break;
          }
          case MsgType::Drain: {
            drain();
            std::string body = kvLine("state", "draining");
            if (!sendFrame(sock, MsgType::StatusOk, body))
                return;
            break;
          }
          default:
            // knownMsgType + the request-range check exclude this.
            sendError(sock, ErrorCode::BadRequest, "unhandled type");
            break;
        }
    }
}

} // namespace tea::service
