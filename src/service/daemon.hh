/**
 * @file
 * tea-daemon: the socket front-end over the Scheduler.
 *
 * One accept thread per listener (Unix-domain socket always, loopback
 * TCP when enabled) and one thread per connection. Connections speak
 * the framed protocol (docs/PROTOCOL.md): HELLO negotiates, SUBMIT
 * admits a serialized FleetPlan, WATCH streams CELL frames as the
 * scheduler merges cells, CANCEL/STATUS act on one campaign, DRAIN
 * asks the whole daemon to finish its work and exit.
 *
 * The daemon is embeddable: tests and the throughput bench construct
 * a ServiceDaemon in-process, drive it through a real socket with the
 * Client, and stop it — identical code paths to the standalone
 * tea-daemon binary, minus process management.
 */

#ifndef TEA_SERVICE_DAEMON_HH
#define TEA_SERVICE_DAEMON_HH

#include <atomic>
#include <condition_variable>
#include <mutex>
#include <thread>
#include <vector>

#include "service/scheduler.hh"
#include "service/socketio.hh"

namespace tea::service {

class ServiceDaemon
{
  public:
    explicit ServiceDaemon(DaemonOptions opt);
    ~ServiceDaemon();

    /** Bind the listeners and start serving; false on bind failure. */
    bool start();
    /** Hard stop: close listeners, stop the scheduler, join threads. */
    void stop();

    const std::string &socketPath() const { return opt_.socketPath; }
    /** TCP port actually bound (0 when TCP is disabled). */
    int tcpPort() const { return tcpPort_; }
    Scheduler &scheduler() { return sched_; }

    /** True once a DRAIN request was received (or drain() called). */
    bool drainRequested() const
    {
        return drainRequested_.load(std::memory_order_relaxed);
    }
    /** Programmatic drain: same as receiving a DRAIN frame. */
    void drain();
    /**
     * Block until a requested drain has emptied the scheduler (the
     * standalone binary exits then) or `stop()` is called.
     */
    void awaitDrained();

  private:
    void acceptLoop(Listener listener);
    void serveConnection(Socket sock);

    DaemonOptions opt_;
    Scheduler sched_;
    std::atomic<bool> stopping_{false};
    std::atomic<bool> drainRequested_{false};
    int tcpPort_ = 0;
    std::vector<Listener> listeners_;
    std::vector<std::thread> acceptThreads_;
    std::mutex connMu_;
    std::vector<std::thread> connThreads_;
};

} // namespace tea::service

#endif // TEA_SERVICE_DAEMON_HH
