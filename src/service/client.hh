/**
 * @file
 * Synchronous client for the tea-daemon protocol. One connection, one
 * request at a time; every call blocks until the daemon answers (or
 * the connection drops). This is the whole API surface the tea-client
 * CLI and the service tests use — anything fancier (pipelining,
 * reconnect policies) belongs in the caller.
 *
 * Error frames do not throw: the call returns false and `lastError()`
 * holds the decoded code / retry hint / detail, so callers can treat
 * RETRY_AFTER differently from NOT_FOUND.
 */

#ifndef TEA_SERVICE_CLIENT_HH
#define TEA_SERVICE_CLIENT_HH

#include <cstdint>
#include <functional>
#include <optional>
#include <string>

#include "core/results.hh"
#include "service/socketio.hh"

namespace tea::service {

class Client
{
  public:
    /** Connect + HELLO ("" name -> "anon"); nullopt on any failure. */
    static std::optional<Client> connectUnix(const std::string &path,
                                             const std::string &name);
    static std::optional<Client> connectTcp(int port,
                                            const std::string &name);

    struct Error
    {
        ErrorCode code = ErrorCode::Internal;
        int64_t retryMs = 0;
        std::string detail;
    };

    /** The last Error frame received (valid after a false return). */
    const Error &lastError() const { return err_; }

    struct Submitted
    {
        uint64_t id = 0;
        bool deduped = false;
        uint64_t cellsTotal = 0;
    };

    /** Submit a serialized FleetPlan. */
    bool submit(const std::string &planBytes, Submitted &out);

    struct Status
    {
        std::string state;
        uint64_t cellsDone = 0;
        uint64_t cellsTotal = 0;
        bool interrupted = false;
    };

    bool status(uint64_t id, Status &out);

    /**
     * Stream campaign `id` from cell 0 to its terminal state; `onCell`
     * (may be null) sees each cell in canonical merge order. `final`
     * is the DONE frame's snapshot.
     */
    bool watch(uint64_t id,
               const std::function<void(const core::CampaignCell &)>
                   &onCell,
               Status &final);

    bool cancel(uint64_t id, Status &out);
    bool drain();

  private:
    explicit Client(Socket sock) : sock_(std::move(sock)) {}
    bool hello(const std::string &name);
    /**
     * Send one request and receive the next frame. False on transport
     * failure or an Error frame (which fills err_).
     */
    bool roundTrip(MsgType type, const std::string &payload,
                   MsgType expect, Frame &resp);
    bool recvOne(Frame &resp);

    Socket sock_;
    std::string buf_;
    Error err_;
};

} // namespace tea::service

#endif // TEA_SERVICE_CLIENT_HH
