/**
 * @file
 * Minimal blocking socket plumbing for the daemon and its client:
 * RAII fds, Unix-domain and TCP listeners, and whole-frame send/recv
 * on top of the protocol framing.
 *
 * Everything here is deliberately boring POSIX: blocking sockets, a
 * poll(2) timeout on accept/recv so loops can notice shutdown, and
 * EINTR retries. No event loop — the daemon runs one thread per
 * connection, which at "campaigns per minute" request rates is the
 * simplest design that cannot starve anyone.
 */

#ifndef TEA_SERVICE_SOCKETIO_HH
#define TEA_SERVICE_SOCKETIO_HH

#include <optional>
#include <string>

#include "service/protocol.hh"

namespace tea::service {

/** A connected stream socket (move-only RAII fd). */
class Socket
{
  public:
    Socket() = default;
    explicit Socket(int fd) : fd_(fd) {}
    Socket(Socket &&other) noexcept : fd_(other.fd_)
    {
        other.fd_ = -1;
    }
    Socket &operator=(Socket &&other) noexcept;
    Socket(const Socket &) = delete;
    Socket &operator=(const Socket &) = delete;
    ~Socket() { close(); }

    bool valid() const { return fd_ >= 0; }
    int fd() const { return fd_; }
    void close();

    /** Connect to a daemon's Unix-domain socket; nullopt on failure. */
    static std::optional<Socket> connectUnix(const std::string &path);
    /** Connect to a daemon's loopback TCP port; nullopt on failure. */
    static std::optional<Socket> connectTcp(int port);

    /** Write the whole buffer (EINTR/partial-write safe). */
    bool sendAll(std::string_view bytes);
    /**
     * Read some bytes into `buf` (appending). Returns the count read,
     * 0 on orderly peer close, -1 on error, -2 when `timeoutMs` >= 0
     * elapsed with nothing to read.
     */
    long recvSome(std::string &buf, int timeoutMs = -1);

  private:
    int fd_ = -1;
};

/** A listening socket (Unix-domain or TCP on loopback). */
class Listener
{
  public:
    Listener() = default;
    Listener(Listener &&other) noexcept;
    Listener &operator=(Listener &&other) noexcept;
    Listener(const Listener &) = delete;
    Listener &operator=(const Listener &) = delete;
    ~Listener() { close(); }

    /**
     * Bind + listen on a Unix-domain socket path. A stale socket file
     * from a dead daemon is removed first (the bind would fail
     * otherwise); two live daemons on one path lose to the second
     * bind, which is the operator's configuration error to fix.
     */
    static std::optional<Listener> listenUnix(const std::string &path);
    /** Bind + listen on 127.0.0.1:`port` (the optional TCP mode). */
    static std::optional<Listener> listenTcp(int port);

    bool valid() const { return fd_ >= 0; }
    /** Port actually bound (TCP with port 0 picks one); 0 for UDS. */
    int port() const { return port_; }
    /**
     * Accept one connection, waiting at most `timeoutMs` (-1 = wait
     * forever). nullopt on timeout or error.
     */
    std::optional<Socket> accept(int timeoutMs);
    void close();

  private:
    int fd_ = -1;
    int port_ = 0;
    /** Socket file to unlink on close ("" for TCP). */
    std::string unlinkPath_;
};

/** Encode and send one frame. */
bool sendFrame(Socket &sock, MsgType type, std::string_view payload);

enum class RecvStatus
{
    Ok,          ///< one frame decoded into `out`
    Closed,      ///< peer closed (or read error) before a full frame
    Timeout,     ///< `timeoutMs` elapsed mid-frame
    Bad,         ///< structurally invalid bytes: abandon the stream
    VersionSkew, ///< intact frame, wrong protocol version
};

/**
 * Receive one whole frame, buffering partial reads in `buf` (pass the
 * same string across calls on a connection — it may already hold the
 * next frame's prefix).
 */
RecvStatus recvFrame(Socket &sock, std::string &buf, Frame &out,
                     int timeoutMs = -1);

} // namespace tea::service

#endif // TEA_SERVICE_SOCKETIO_HH
