/**
 * @file
 * Wire form of one completed grid cell: the key=value payload carried
 * by CELL frames. Shared by the daemon (encode) and the client
 * (decode); kept out of protocol.hh so the framing layer stays free of
 * campaign types.
 */

#ifndef TEA_SERVICE_CELLWIRE_HH
#define TEA_SERVICE_CELLWIRE_HH

#include <map>
#include <string>

#include "core/results.hh"

namespace tea::service {

/** Serialize a cell's coordinates and outcome counters. */
std::string cellToKv(const core::CampaignCell &cell);

/** Rebuild a cell from a parsed payload; false when keys are missing. */
bool cellFromKv(const std::map<std::string, std::string> &kv,
                core::CampaignCell &out);

} // namespace tea::service

#endif // TEA_SERVICE_CELLWIRE_HH
