#include "service/cellwire.hh"

#include <cstdio>
#include <sstream>

namespace tea::service {

std::string
cellToKv(const core::CampaignCell &cell)
{
    char vr[32];
    // %.17g: the VR fraction round-trips bit-exactly, like the fleet
    // plan's doubles.
    std::snprintf(vr, sizeof(vr), "%.17g", cell.vrFrac);
    std::ostringstream out;
    out << "workload " << cell.workload << "\n";
    out << "model " << static_cast<int>(cell.model) << "\n";
    out << "vr " << vr << "\n";
    out << "runs " << cell.result.runs << "\n";
    out << "masked " << cell.result.masked << "\n";
    out << "sdc " << cell.result.sdc << "\n";
    out << "crash " << cell.result.crash << "\n";
    out << "timeout " << cell.result.timeout << "\n";
    out << "enginefault " << cell.result.engineFault << "\n";
    out << "retries " << cell.result.retries << "\n";
    out << "injected " << cell.result.injectedErrors << "\n";
    out << "committed " << cell.result.committedInstructions << "\n";
    out << "wrongpath " << cell.result.wrongPathInjections << "\n";
    char w[160];
    std::snprintf(w, sizeof(w),
                  "weighted %d\nwsum %.17g\nwunsafe %.17g\n"
                  "wsqsum %.17g\nwusqsum %.17g\n",
                  cell.result.weightedModel ? 1 : 0,
                  cell.result.weightSum, cell.result.weightUnsafe,
                  cell.result.weightSqSum,
                  cell.result.weightUnsafeSqSum);
    out << w;
    out << "mcchm " << cell.result.mcCoherenceMasked << "\n";
    out << "mcscs " << cell.result.mcSdcSameCore << "\n";
    out << "mcccs " << cell.result.mcSdcCrossCore << "\n";
    out << "mcsync " << cell.result.mcSyncCrash << "\n";
    out << "mcdead " << cell.result.mcDeadlock << "\n";
    return out.str();
}

bool
cellFromKv(const std::map<std::string, std::string> &kv,
           core::CampaignCell &out)
{
    auto get = [&kv](const char *key, uint64_t &dst) {
        auto it = kv.find(key);
        if (it == kv.end())
            return false;
        dst = std::strtoull(it->second.c_str(), nullptr, 10);
        return true;
    };
    auto wl = kv.find("workload");
    auto model = kv.find("model");
    auto vr = kv.find("vr");
    if (wl == kv.end() || model == kv.end() || vr == kv.end())
        return false;
    out.workload = wl->second;
    out.model = static_cast<models::ModelKind>(
        std::strtol(model->second.c_str(), nullptr, 10));
    out.vrFrac = std::strtod(vr->second.c_str(), nullptr);
    bool ok = get("runs", out.result.runs) &&
              get("masked", out.result.masked) &&
              get("sdc", out.result.sdc) &&
              get("crash", out.result.crash) &&
              get("timeout", out.result.timeout) &&
              get("enginefault", out.result.engineFault) &&
              get("retries", out.result.retries) &&
              get("injected", out.result.injectedErrors) &&
              get("committed", out.result.committedInstructions) &&
              get("wrongpath", out.result.wrongPathInjections);
    // Weighted-estimator fields are optional on the wire: a client
    // reading an older daemon's stream keeps the zero defaults.
    auto getD = [&kv](const char *key, double &dst) {
        auto it = kv.find(key);
        if (it != kv.end())
            dst = std::strtod(it->second.c_str(), nullptr);
    };
    if (auto it = kv.find("weighted"); it != kv.end())
        out.result.weightedModel = it->second == "1";
    getD("wsum", out.result.weightSum);
    getD("wunsafe", out.result.weightUnsafe);
    getD("wsqsum", out.result.weightSqSum);
    getD("wusqsum", out.result.weightUnsafeSqSum);
    // Multi-core refinement counters are likewise optional: absent
    // from single-core cells and from older daemons.
    auto getOpt = [&kv](const char *key, uint64_t &dst) {
        auto it = kv.find(key);
        if (it != kv.end())
            dst = std::strtoull(it->second.c_str(), nullptr, 10);
    };
    getOpt("mcchm", out.result.mcCoherenceMasked);
    getOpt("mcscs", out.result.mcSdcSameCore);
    getOpt("mcccs", out.result.mcSdcCrossCore);
    getOpt("mcsync", out.result.mcSyncCrash);
    getOpt("mcdead", out.result.mcDeadlock);
    out.result.workload = out.workload;
    out.result.model = models::modelKindName(out.model);
    return ok;
}

} // namespace tea::service
