#include "service/scheduler.hh"

#include <algorithm>
#include <cerrno>
#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>

#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "util/fsatomic.hh"
#include "util/logging.hh"

namespace tea::service {

namespace {

bool
envI64(const char *name, int64_t &out)
{
    const char *v = std::getenv(name);
    if (!v)
        return false;
    char *end = nullptr;
    errno = 0;
    long long parsed = std::strtoll(v, &end, 10);
    if (errno != 0 || end == v || *end != '\0') {
        warn("ignoring malformed %s='%s'", name, v);
        return false;
    }
    out = parsed;
    return true;
}

obs::Counter
rejectionCounter(ErrorCode code)
{
    std::string label =
        std::string("code=\"") + errorCodeName(code) + "\"";
    return obs::Registry::global().counter(
        obs::metric::kDaemonRejected, label,
        "campaign submissions rejected at admission");
}

/**
 * The coordinates under which a campaign's shared-cache artifacts
 * (grid CSV, cell journals, manifests) are named. Two *distinct*
 * campaigns with equal coordinates must not run concurrently — they
 * would write the same files.
 */
std::string
clashKeyFor(const core::ToolflowOptions &opt)
{
    char buf[128];
    std::snprintf(buf, sizeof(buf), "r%d_s%llu_x%d_a%g_c%g",
                  core::cellRunCap(opt),
                  static_cast<unsigned long long>(opt.seed),
                  opt.workloadScale,
                  opt.adaptive() ? opt.ciTarget : 0.0,
                  opt.adaptive() ? opt.ciConf : 0.0);
    return std::string(buf) + "@" + opt.cacheDir;
}

} // namespace

DaemonOptions
daemonOptionsFromEnv()
{
    DaemonOptions d;
    d.fleet = fleet::fleetOptionsFromEnv();
    if (const char *v = std::getenv("REPRO_DAEMON_SOCKET"))
        d.socketPath = v;
    if (const char *v = std::getenv("REPRO_DAEMON_SPOOL"))
        d.spoolRoot = v;
    int64_t n;
    if (envI64("REPRO_DAEMON_TCP_PORT", n))
        d.tcpPort = static_cast<int>(std::clamp<int64_t>(n, -1, 65535));
    if (envI64("REPRO_DAEMON_QUEUE", n))
        d.queueCap = static_cast<int>(std::clamp<int64_t>(n, 1, 4096));
    if (envI64("REPRO_DAEMON_CONCURRENCY", n))
        d.concurrency =
            static_cast<int>(std::clamp<int64_t>(n, 1, 64));
    if (envI64("REPRO_DAEMON_CLIENT_INFLIGHT", n))
        d.clientInflight =
            static_cast<int>(std::clamp<int64_t>(n, 1, 4096));
    if (envI64("REPRO_DAEMON_RETRY_MS", n))
        d.retryMs = std::clamp<int64_t>(n, 1, 3600000);
    return d;
}

const char *
campaignStateName(CampaignState s)
{
    switch (s) {
      case CampaignState::Queued: return "queued";
      case CampaignState::Running: return "running";
      case CampaignState::Done: return "done";
      case CampaignState::Cancelled: return "cancelled";
      case CampaignState::Failed: return "failed";
    }
    return "unknown";
}

Scheduler::Scheduler(DaemonOptions opt) : opt_(std::move(opt))
{
    if (opt_.cacheDir.empty())
        opt_.cacheDir = core::optionsFromEnv().cacheDir;
    if (opt_.spoolRoot.empty())
        opt_.spoolRoot = !opt_.cacheDir.empty()
                             ? opt_.cacheDir + "/daemon-spool"
                             : std::string("tea_daemon_spool");
    obs::Registry::global()
        .gauge(obs::metric::kDaemonState, "",
               "scheduler state: 0 stopped, 1 serving, 2 draining")
        .set(1);
    for (int i = 0; i < opt_.concurrency; ++i)
        executors_.emplace_back([this] { executorLoop(); });
}

Scheduler::~Scheduler()
{
    stop();
}

void
Scheduler::updateGauges()
{
    obs::Registry &reg = obs::Registry::global();
    reg.gauge(obs::metric::kDaemonQueueDepth, "",
              "campaigns admitted but not yet executing")
        .set(static_cast<int64_t>(queue_.size()));
    reg.gauge(obs::metric::kDaemonActive, "",
              "campaigns currently executing")
        .set(static_cast<int64_t>(running_));
}

Scheduler::SubmitResult
Scheduler::submit(const std::string &planBytes,
                  const std::string &client)
{
    SubmitResult r;
    auto plan = fleet::FleetPlan::parse(planBytes);
    if (!plan) {
        r.rej = {ErrorCode::BadRequest, 0, "unparseable fleet plan"};
        rejectionCounter(r.rej.code).inc(1);
        return r;
    }
    // One shared characterization cache across every campaign — and,
    // because the override lands *before* dedup keying, two clients
    // differing only in their local cache paths still deduplicate.
    plan->opt.cacheDir = opt_.cacheDir;
    std::string canon = plan->serialize();

    std::lock_guard<std::mutex> lock(mu_);
    obs::Registry &reg = obs::Registry::global();
    if (stopping_ || draining_) {
        r.rej = {ErrorCode::ShuttingDown, 0, "daemon is draining"};
        rejectionCounter(r.rej.code).inc(1);
        return r;
    }
    if (auto it = activeByPlan_.find(canon);
        it != activeByPlan_.end()) {
        Campaign &c = *campaigns_.at(it->second);
        reg.counter(obs::metric::kDaemonDeduped, "",
                    "submissions attached to an identical active "
                    "campaign")
            .inc(1);
        r.accepted = true;
        r.sub = {c.id, true, c.cellsTotal};
        return r;
    }
    int owned = 0;
    for (const auto &[id, c] : campaigns_)
        if (c->client == client &&
            (c->state == CampaignState::Queued ||
             c->state == CampaignState::Running))
            ++owned;
    if (owned >= opt_.clientInflight) {
        r.rej = {ErrorCode::InflightLimit, opt_.retryMs,
                 "client in-flight campaign cap reached"};
        rejectionCounter(r.rej.code).inc(1);
        return r;
    }
    if (queue_.size() >= static_cast<size_t>(opt_.queueCap)) {
        r.rej = {ErrorCode::RetryAfter, opt_.retryMs,
                 "admission queue full"};
        rejectionCounter(r.rej.code).inc(1);
        return r;
    }

    auto c = std::make_unique<Campaign>();
    c->id = nextId_++;
    c->planBytes = canon;
    c->plan = std::move(*plan);
    c->client = client;
    c->clashKey = clashKeyFor(c->plan.opt);
    c->cellsTotal =
        core::planEvaluationGrid(c->plan.opt, c->plan.spec).size();
    c->submitMs = wallClockMs();
    r.accepted = true;
    r.sub = {c->id, false, c->cellsTotal};
    activeByPlan_[canon] = c->id;
    queue_.push_back(c->id);
    campaigns_.emplace(c->id, std::move(c));
    reg.counter(obs::metric::kDaemonSubmitted, "",
                "campaigns admitted to the scheduler")
        .inc(1);
    updateGauges();
    cv_.notify_all();
    return r;
}

std::optional<Scheduler::Progress>
Scheduler::status(uint64_t id) const
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = campaigns_.find(id);
    if (it == campaigns_.end())
        return std::nullopt;
    const Campaign &c = *it->second;
    Progress p;
    p.state = c.state;
    p.cellsDone = c.cells.size();
    p.cellsTotal = c.cellsTotal;
    p.interrupted = c.interrupted;
    return p;
}

bool
Scheduler::next(uint64_t id, uint64_t cursor, int timeoutMs, Event &ev)
{
    std::unique_lock<std::mutex> lock(mu_);
    auto it = campaigns_.find(id);
    if (it == campaigns_.end())
        return false;
    Campaign &c = *it->second;
    auto ready = [&] {
        return cursor < c.cells.size() ||
               (c.state != CampaignState::Queued &&
                c.state != CampaignState::Running);
    };
    if (timeoutMs < 0)
        cv_.wait(lock, ready);
    else
        cv_.wait_for(lock, std::chrono::milliseconds(timeoutMs),
                     ready);
    ev = Event{};
    ev.progress.state = c.state;
    ev.progress.cellsDone = c.cells.size();
    ev.progress.cellsTotal = c.cellsTotal;
    ev.progress.interrupted = c.interrupted;
    if (cursor < c.cells.size()) {
        ev.haveCell = true;
        ev.cell = c.cells[cursor];
        return true;
    }
    ev.terminal = c.state != CampaignState::Queued &&
                  c.state != CampaignState::Running;
    return true;
}

bool
Scheduler::cancel(uint64_t id)
{
    std::lock_guard<std::mutex> lock(mu_);
    auto it = campaigns_.find(id);
    if (it == campaigns_.end())
        return false;
    Campaign &c = *it->second;
    switch (c.state) {
      case CampaignState::Queued: {
        queue_.erase(std::remove(queue_.begin(), queue_.end(), id),
                     queue_.end());
        c.state = CampaignState::Cancelled;
        activeByPlan_.erase(c.planBytes);
        obs::Registry::global()
            .counter(obs::metric::kDaemonCancelled, "",
                     "campaigns cancelled by request")
            .inc(1);
        updateGauges();
        cv_.notify_all();
        break;
      }
      case CampaignState::Running:
        // Raised flag only: the executor winds the campaign down at
        // its next cell boundary and records the terminal state.
        c.stop.store(true, std::memory_order_relaxed);
        break;
      default:
        break; // already terminal — cancel is idempotent
    }
    return true;
}

void
Scheduler::drain()
{
    std::lock_guard<std::mutex> lock(mu_);
    if (draining_)
        return;
    draining_ = true;
    obs::Registry::global()
        .gauge(obs::metric::kDaemonState, "",
               "scheduler state: 0 stopped, 1 serving, 2 draining")
        .set(2);
    cv_.notify_all();
}

bool
Scheduler::draining() const
{
    std::lock_guard<std::mutex> lock(mu_);
    return draining_;
}

void
Scheduler::awaitIdle()
{
    std::unique_lock<std::mutex> lock(mu_);
    cv_.wait(lock, [&] { return queue_.empty() && running_ == 0; });
}

void
Scheduler::setPaused(bool paused)
{
    std::lock_guard<std::mutex> lock(mu_);
    paused_ = paused;
    cv_.notify_all();
}

void
Scheduler::stop()
{
    {
        std::lock_guard<std::mutex> lock(mu_);
        if (stopping_)
            return;
        stopping_ = true;
        paused_ = false;
        // Queued campaigns will never run now; running ones get the
        // cooperative stop and finish as Cancelled.
        for (uint64_t id : queue_) {
            Campaign &c = *campaigns_.at(id);
            c.state = CampaignState::Cancelled;
            activeByPlan_.erase(c.planBytes);
        }
        queue_.clear();
        for (auto &[id, c] : campaigns_)
            if (c->state == CampaignState::Running)
                c->stop.store(true, std::memory_order_relaxed);
        updateGauges();
        cv_.notify_all();
    }
    for (std::thread &t : executors_)
        if (t.joinable())
            t.join();
    obs::Registry::global()
        .gauge(obs::metric::kDaemonState, "",
               "scheduler state: 0 stopped, 1 serving, 2 draining")
        .set(0);
}

std::deque<uint64_t>::iterator
Scheduler::nextRunnable()
{
    for (auto it = queue_.begin(); it != queue_.end(); ++it) {
        const Campaign &c = *campaigns_.at(*it);
        if (!runningClash_.count(c.clashKey))
            return it;
    }
    return queue_.end();
}

void
Scheduler::finish(Campaign &c, CampaignState state)
{
    std::lock_guard<std::mutex> lock(mu_);
    c.state = state;
    runningClash_.erase(c.clashKey);
    --running_;
    auto it = activeByPlan_.find(c.planBytes);
    if (it != activeByPlan_.end() && it->second == c.id)
        activeByPlan_.erase(it);
    obs::Registry &reg = obs::Registry::global();
    if (state == CampaignState::Done)
        reg.counter(obs::metric::kDaemonCompleted, "",
                    "campaigns that ran to completion")
            .inc(1);
    else if (state == CampaignState::Cancelled)
        reg.counter(obs::metric::kDaemonCancelled, "",
                    "campaigns cancelled by request")
            .inc(1);
    reg.histogram(obs::metric::kDaemonCampaignMs,
                  obs::latencyBucketsMs(), "",
                  "campaign wall time, admission to terminal state")
        .observe(static_cast<double>(wallClockMs() - c.submitMs));
    updateGauges();
    cv_.notify_all();
}

void
Scheduler::execute(Campaign &c)
{
    core::GridSpec spec = c.plan.spec;
    spec.stopFlag = &c.stop;
    spec.onCell = [this, &c](const core::CampaignCell &cell) {
        {
            std::lock_guard<std::mutex> lock(mu_);
            c.cells.push_back(cell);
        }
        cv_.notify_all();
    };
    fleet::FleetOptions fopt = opt_.fleet;
    // Every campaign gets its own spool namespace under the shared
    // root; byte-identical plans map to the same namespace, so a
    // resubmission of a crashed campaign resumes its spool.
    fopt.spoolDir = opt_.spoolRoot + "/" + fleet::spoolNamespace(c.plan);

    core::EvaluationGrid grid =
        fleet::runFleetGrid(c.plan.opt, fopt, spec);

    bool stopped = c.stop.load(std::memory_order_relaxed);
    {
        std::lock_guard<std::mutex> lock(mu_);
        // The cached-grid fast path returns without firing onCell:
        // stream the cells it loaded.
        for (size_t i = c.cells.size(); i < grid.cells.size(); ++i)
            c.cells.push_back(grid.cells[i]);
        c.interrupted = grid.interrupted;
    }
    cv_.notify_all();
    finish(c, grid.interrupted
                  ? (stopped ? CampaignState::Cancelled
                             : CampaignState::Failed)
                  : CampaignState::Done);
}

void
Scheduler::executorLoop()
{
    obs::Registry &reg = obs::Registry::global();
    for (;;) {
        Campaign *c = nullptr;
        {
            std::unique_lock<std::mutex> lock(mu_);
            cv_.wait(lock, [&] {
                return stopping_ ||
                       (!paused_ && nextRunnable() != queue_.end());
            });
            if (stopping_)
                return;
            auto it = nextRunnable();
            c = campaigns_.at(*it).get();
            queue_.erase(it);
            c->state = CampaignState::Running;
            c->startMs = wallClockMs();
            runningClash_.insert(c->clashKey);
            ++running_;
            reg.histogram(obs::metric::kDaemonQueueWaitMs,
                          obs::latencyBucketsMs(), "",
                          "time campaigns wait in the admission queue")
                .observe(static_cast<double>(c->startMs -
                                             c->submitMs));
            updateGauges();
        }
        execute(*c);
    }
}

} // namespace tea::service
