/**
 * @file
 * The multi-campaign scheduler behind tea-daemon.
 *
 * Campaigns arrive as serialized FleetPlans, pass admission control,
 * wait in a bounded FIFO queue, and execute on a small pool of
 * executor threads — each running the PR7 fleet path
 * (fleet::runFleetGrid) against its own namespaced spool under one
 * shared spool root, with one shared characterization cache
 * (plan.opt.cacheDir is overridden to the daemon's), so concurrent
 * campaigns reuse each other's (unit, operating point) work instead of
 * re-running gate-level simulation.
 *
 * Admission control, in rejection order:
 *
 *  1. **Draining/stopping** — SHUTTING_DOWN; nothing new is accepted.
 *  2. **Deduplication** — a plan byte-identical (after the cache-dir
 *     override) to a queued or running campaign attaches to it: same
 *     id, same streamed cells, no queue slot or in-flight charge.
 *  3. **Per-client in-flight cap** — INFLIGHT_LIMIT when the client
 *     already owns `clientInflight` queued+running campaigns.
 *  4. **Bounded queue** — RETRY_AFTER (with a retry hint) when
 *     `queueCap` campaigns are already waiting. The daemon never
 *     blocks a submitter and never drops a campaign it accepted.
 *
 * Two non-identical campaigns whose artifact coordinates (run cap,
 * seed, scale, adaptive suffix) collide would race on the same grid
 * CSV and journal files in the shared cache; the scheduler serializes
 * them — such a campaign stays queued until the clashing one finishes.
 *
 * Execution streams: every merged cell is appended to the campaign's
 * in-memory result list and broadcast; `next()` is the blocking
 * cursor-based reader the connection threads use to multiplex CELL
 * frames to any number of watchers.
 */

#ifndef TEA_SERVICE_SCHEDULER_HH
#define TEA_SERVICE_SCHEDULER_HH

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <map>
#include <memory>
#include <mutex>
#include <optional>
#include <set>
#include <string>
#include <thread>
#include <vector>

#include "core/results.hh"
#include "fleet/coordinator.hh"
#include "fleet/workunit.hh"
#include "service/protocol.hh"

namespace tea::service {

struct DaemonOptions
{
    /** Unix-domain socket path the daemon listens on. */
    std::string socketPath = "tea_daemon.sock";
    /** TCP port on loopback (< 0 disabled; 0 picks an ephemeral one). */
    int tcpPort = -1;
    /** Bounded admission queue: queued (not running) campaign cap. */
    int queueCap = 8;
    /** Executor threads = campaigns that may run concurrently. */
    int concurrency = 1;
    /** Per-client queued+running campaign cap. */
    int clientInflight = 4;
    /** Retry hint sent with RETRY_AFTER rejections. */
    int64_t retryMs = 500;
    /**
     * Shared characterization-cache dir forced onto every submitted
     * plan ("" = the REPRO_CACHE / default cache dir at startup).
     */
    std::string cacheDir;
    /** Spool root; campaigns get `<root>/<spoolNamespace(plan)>`. */
    std::string spoolRoot;
    /** Worker-fleet settings applied to every campaign. */
    fleet::FleetOptions fleet;
};

/**
 * Read REPRO_DAEMON_SOCKET / REPRO_DAEMON_TCP_PORT /
 * REPRO_DAEMON_QUEUE / REPRO_DAEMON_CONCURRENCY /
 * REPRO_DAEMON_CLIENT_INFLIGHT / REPRO_DAEMON_RETRY_MS /
 * REPRO_DAEMON_SPOOL overrides (malformed values warn and keep the
 * default), plus the REPRO_FLEET_* fleet settings.
 */
DaemonOptions daemonOptionsFromEnv();

enum class CampaignState
{
    Queued,
    Running,
    Done,
    Cancelled,
    Failed,
};

const char *campaignStateName(CampaignState s);

class Scheduler
{
  public:
    explicit Scheduler(DaemonOptions opt);
    ~Scheduler();

    struct Submission
    {
        uint64_t id = 0;
        /** True when attached to an already-active identical plan. */
        bool deduped = false;
        uint64_t cellsTotal = 0;
    };

    struct Rejection
    {
        ErrorCode code = ErrorCode::Internal;
        int64_t retryMs = 0;
        std::string detail;
    };

    struct SubmitResult
    {
        bool accepted = false;
        Submission sub;
        Rejection rej;
    };

    /** Admit (or reject) one serialized FleetPlan from `client`. */
    SubmitResult submit(const std::string &planBytes,
                        const std::string &client);

    struct Progress
    {
        CampaignState state = CampaignState::Queued;
        uint64_t cellsDone = 0;
        uint64_t cellsTotal = 0;
        bool interrupted = false;
    };

    std::optional<Progress> status(uint64_t id) const;

    struct Event
    {
        bool haveCell = false;
        core::CampaignCell cell; ///< valid when haveCell
        bool terminal = false;   ///< campaign reached a final state
        Progress progress;
    };

    /**
     * Blocking watch step: wait up to `timeoutMs` for cell `cursor` to
     * exist or the campaign to finish. Returns false for an unknown
     * id; an Event with neither flag set means timeout (call again).
     */
    bool next(uint64_t id, uint64_t cursor, int timeoutMs, Event &ev);

    /**
     * Cancel: a queued campaign is removed immediately; a running one
     * gets its stop flag raised and winds down at the next cell
     * boundary (journals intact). False for an unknown id.
     */
    bool cancel(uint64_t id);

    /** Stop admitting; queued and running campaigns still finish. */
    void drain();
    bool draining() const;
    /** Block until no campaign is queued or running. */
    void awaitIdle();
    /**
     * Hold/release the executors. While paused, admitted campaigns
     * stay queued — deterministic backpressure for tests and a
     * maintenance valve for operators.
     */
    void setPaused(bool paused);
    /** Cancel everything and join the executors. */
    void stop();

  private:
    struct Campaign
    {
        uint64_t id = 0;
        /** Canonical identity: serialized plan after the overrides. */
        std::string planBytes;
        fleet::FleetPlan plan;
        std::string client;
        /** Shared-cache artifact coordinates (see file header). */
        std::string clashKey;
        CampaignState state = CampaignState::Queued;
        std::atomic<bool> stop{false};
        std::vector<core::CampaignCell> cells;
        uint64_t cellsTotal = 0;
        bool interrupted = false;
        int64_t submitMs = 0;
        int64_t startMs = 0;
    };

    void executorLoop();
    void execute(Campaign &c);
    /** Queued campaign runnable now (clash-free); lock held. */
    std::deque<uint64_t>::iterator nextRunnable();
    void finish(Campaign &c, CampaignState state);
    void updateGauges(); ///< lock held

    DaemonOptions opt_;
    mutable std::mutex mu_;
    std::condition_variable cv_;
    uint64_t nextId_ = 1;
    std::map<uint64_t, std::unique_ptr<Campaign>> campaigns_;
    std::deque<uint64_t> queue_;
    /** planBytes -> active (queued/running) campaign id. */
    std::map<std::string, uint64_t> activeByPlan_;
    /** Clash keys of running campaigns (serialization guard). */
    std::set<std::string> runningClash_;
    size_t running_ = 0;
    bool draining_ = false;
    bool paused_ = false;
    bool stopping_ = false;
    std::vector<std::thread> executors_;
};

} // namespace tea::service

#endif // TEA_SERVICE_SCHEDULER_HH
