/**
 * @file
 * Bit-manipulation helpers shared by the soft-float, circuit, and ISA
 * layers.
 */

#ifndef TEA_UTIL_BITOPS_HH
#define TEA_UTIL_BITOPS_HH

#include <bit>
#include <cstdint>

namespace tea {

/** Extract bits [lo, lo+len) of value. */
constexpr uint64_t
bits(uint64_t value, unsigned lo, unsigned len)
{
    if (len >= 64)
        return value >> lo;
    return (value >> lo) & ((1ULL << len) - 1);
}

/** Extract a single bit. */
constexpr bool
bit(uint64_t value, unsigned pos)
{
    return (value >> pos) & 1ULL;
}

/** Insert bits [lo, lo+len) of field into value. */
constexpr uint64_t
insertBits(uint64_t value, unsigned lo, unsigned len, uint64_t field)
{
    uint64_t mask = (len >= 64) ? ~0ULL : ((1ULL << len) - 1);
    return (value & ~(mask << lo)) | ((field & mask) << lo);
}

/** Mask with the low n bits set (n may be 0..64). */
constexpr uint64_t
lowMask(unsigned n)
{
    return n >= 64 ? ~0ULL : ((1ULL << n) - 1);
}

/** Sign-extend the low n bits of value. */
constexpr int64_t
sext(uint64_t value, unsigned n)
{
    if (n == 0 || n >= 64)
        return static_cast<int64_t>(value);
    uint64_t m = 1ULL << (n - 1);
    value &= lowMask(n);
    return static_cast<int64_t>((value ^ m) - m);
}

/** Population count. */
constexpr int
popcount(uint64_t value)
{
    return std::popcount(value);
}

/** Number of leading zeros in an n-bit value. */
constexpr int
clz(uint64_t value, unsigned width = 64)
{
    if (value == 0)
        return static_cast<int>(width);
    return std::countl_zero(value) - static_cast<int>(64 - width);
}

/** True if value is a power of two (and nonzero). */
constexpr bool
isPow2(uint64_t value)
{
    return value != 0 && (value & (value - 1)) == 0;
}

} // namespace tea

#endif // TEA_UTIL_BITOPS_HH
