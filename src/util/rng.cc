#include "util/rng.hh"

#include <cmath>

#include "util/logging.hh"

namespace tea {

namespace {

uint64_t
splitmix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ULL;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Rng::Rng(uint64_t seed)
{
    uint64_t x = seed;
    for (auto &s : s_)
        s = splitmix64(x);
}

uint64_t
Rng::next()
{
    uint64_t result = rotl(s_[1] * 5, 7) * 9;
    uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
}

uint64_t
Rng::nextBounded(uint64_t bound)
{
    panic_if(bound == 0, "nextBounded(0) is undefined");
    // Rejection sampling to remove modulo bias.
    uint64_t threshold = -bound % bound;
    for (;;) {
        uint64_t r = next();
        if (r >= threshold)
            return r % bound;
    }
}

double
Rng::nextDouble()
{
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

bool
Rng::nextBool(double p)
{
    if (p <= 0.0)
        return false;
    if (p >= 1.0)
        return true;
    return nextDouble() < p;
}

int64_t
Rng::nextRange(int64_t lo, int64_t hi)
{
    panic_if(lo > hi, "nextRange: lo > hi");
    uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    return lo + static_cast<int64_t>(nextBounded(span));
}

double
Rng::nextGaussian()
{
    double u1, u2;
    do {
        u1 = nextDouble();
    } while (u1 <= 1e-300);
    u2 = nextDouble();
    return std::sqrt(-2.0 * std::log(u1)) * std::cos(2.0 * M_PI * u2);
}

uint64_t
Rng::nextPoisson(double lambda)
{
    if (lambda <= 0.0)
        return 0;
    // Inverse transform; fine for the modest lambdas planning uses.
    double l = std::exp(-lambda);
    double p = 1.0;
    uint64_t k = 0;
    do {
        ++k;
        p *= nextDouble();
    } while (p > l && k < 100000);
    return k - 1;
}

uint64_t
Rng::nextBinomial(uint64_t n, double p)
{
    if (n == 0 || p <= 0.0)
        return 0;
    if (p >= 1.0)
        return n;
    if (n <= 64) {
        uint64_t k = 0;
        for (uint64_t i = 0; i < n; ++i)
            k += nextBool(p);
        return k;
    }
    double mean = static_cast<double>(n) * p;
    if (mean < 30.0)
        return std::min<uint64_t>(nextPoisson(mean), n);
    double sigma = std::sqrt(mean * (1.0 - p));
    double v = mean + sigma * nextGaussian();
    if (v < 0.0)
        return 0;
    auto k = static_cast<uint64_t>(v + 0.5);
    return std::min(k, n);
}

Rng
Rng::split()
{
    return Rng(next() ^ 0xa5a5a5a5deadbeefULL);
}

Rng
Rng::fork(uint64_t streamId) const
{
    // Hash the state snapshot together with the stream id through
    // splitmix64; the Rng(seed) constructor then expands the digest
    // into a full xoshiro state. Distinct ids give distinct digests,
    // and none of this touches s_, so the parent stream is unchanged.
    uint64_t x = s_[0] ^ rotl(s_[1], 17) ^ rotl(s_[2], 31) ^
                 rotl(s_[3], 47);
    uint64_t digest = splitmix64(x);
    x ^= streamId + 0x9e3779b97f4a7c15ULL;
    digest ^= rotl(splitmix64(x), 23);
    return Rng(digest);
}

Rng
Rng::fromState(const std::array<uint64_t, 4> &state)
{
    Rng rng(0);
    for (size_t i = 0; i < 4; ++i)
        rng.s_[i] = state[i];
    return rng;
}

} // namespace tea
