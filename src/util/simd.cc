#include "util/simd.hh"

#include <atomic>
#include <cstdlib>
#include <cstring>

#include "util/logging.hh"

namespace tea::simd {

const char *
isaName(Isa isa)
{
    switch (isa) {
      case Isa::Portable:
        return "portable";
      case Isa::Avx2:
        return "avx2";
      case Isa::Avx512:
        return "avx512";
    }
    return "unknown";
}

Isa
bestCompiledIsa()
{
#if defined(TEA_SIMD_AVX512)
    return Isa::Avx512;
#elif defined(TEA_SIMD_AVX2)
    return Isa::Avx2;
#else
    return Isa::Portable;
#endif
}

bool
isaCompiled(Isa isa)
{
    return static_cast<int>(isa) <= static_cast<int>(bestCompiledIsa());
}

Isa
detectedIsa()
{
#if defined(TEA_SIMD_AVX512) || defined(TEA_SIMD_AVX2)
    static const Isa detected = [] {
        Isa best = Isa::Portable;
#if defined(TEA_SIMD_AVX2)
        if (__builtin_cpu_supports("avx2"))
            best = Isa::Avx2;
#endif
#if defined(TEA_SIMD_AVX512)
        // The masked timing recurrence uses avx512f + avx512bw/dq
        // mask plumbing; require the common server trio.
        if (__builtin_cpu_supports("avx512f") &&
            __builtin_cpu_supports("avx512bw") &&
            __builtin_cpu_supports("avx512dq"))
            best = Isa::Avx512;
#endif
        return best;
    }();
    return detected;
#else
    return Isa::Portable;
#endif
}

namespace {

/** Cached dispatch level; -1 = not yet resolved. */
std::atomic<int> gActive{-1};

/** Clamp a requested level to what the build and CPU deliver. */
Isa
clampIsa(Isa want, const char *origin)
{
    Isa limit = detectedIsa();
    if (static_cast<int>(want) <= static_cast<int>(limit))
        return want;
    warn("%s requested %s but this %s supports at most %s; using %s",
         origin, isaName(want),
         isaCompiled(want) ? "CPU" : "build", isaName(limit),
         isaName(limit));
    return limit;
}

Isa
isaFromEnv()
{
    const char *env = std::getenv("REPRO_SIMD");
    if (!env || !*env)
        return detectedIsa();
    if (std::strcmp(env, "portable") == 0)
        return Isa::Portable;
    if (std::strcmp(env, "avx2") == 0)
        return clampIsa(Isa::Avx2, "REPRO_SIMD");
    if (std::strcmp(env, "avx512") == 0)
        return clampIsa(Isa::Avx512, "REPRO_SIMD");
    warn("REPRO_SIMD='%s' invalid (want portable|avx2|avx512); "
         "using %s",
         env, isaName(detectedIsa()));
    return detectedIsa();
}

} // namespace

Isa
activeIsa()
{
    int v = gActive.load(std::memory_order_relaxed);
    if (v < 0) {
        v = static_cast<int>(isaFromEnv());
        gActive.store(v, std::memory_order_relaxed);
    }
    return static_cast<Isa>(v);
}

void
setActiveIsa(Isa isa)
{
    gActive.store(static_cast<int>(clampIsa(isa, "setActiveIsa")),
                  std::memory_order_relaxed);
}

void
resetActiveIsa()
{
    gActive.store(-1, std::memory_order_relaxed);
}

} // namespace tea::simd
