/**
 * @file
 * Crash-safe filesystem primitives for multi-process coordination.
 *
 * The fleet's file-based work queue and the durability layer's caches
 * both need two POSIX guarantees:
 *
 *  - **Atomic publication.** atomicWriteFile() stages content in a
 *    `<path>.tmp.<pid>` sibling and rename(2)s it over the target, so
 *    readers only ever observe either the old file or the complete new
 *    one — never a torn prefix. A crash mid-write leaves at most a
 *    stale temp file, never a corrupt artifact. By default the temp
 *    fd (and, best-effort, the parent directory) is fsync'd before
 *    the rename, so files used as durable commit points — done/
 *    records, rewritten journals, the grid CSV — survive power
 *    failure, not just process kill.
 *  - **Atomic claim.** createExclusive() is open(O_CREAT|O_EXCL): of N
 *    processes racing to create the same lease file, exactly one
 *    succeeds. This is the entire mutual-exclusion story of the lease
 *    protocol — no daemons, no flock inheritance surprises.
 *
 * All functions report failure as a return value and never throw; a
 * full disk or a permissions error must degrade one artifact, not a
 * campaign.
 */

#ifndef TEA_UTIL_FSATOMIC_HH
#define TEA_UTIL_FSATOMIC_HH

#include <optional>
#include <string>

namespace tea {

/**
 * Replace `path` with `contents` atomically (temp file + rename).
 * Readers see the old content or the new content, never a mix. With
 * `durable` (the default) the temp file is fsync'd before the rename
 * and the parent directory after it, making the write a power-failure
 * commit point; pass false only for files whose loss is self-healing
 * (lease heartbeats, which simply re-expire).
 */
bool atomicWriteFile(const std::string &path,
                     const std::string &contents,
                     bool durable = true);

/**
 * Create `path` with `contents` if and only if it does not already
 * exist (O_CREAT|O_EXCL). Exactly one of N racing callers wins; the
 * rest (and any I/O failure) get false.
 */
bool createExclusive(const std::string &path,
                     const std::string &contents);

/** Whole-file read; nullopt when missing or unreadable. */
std::optional<std::string> readFileToString(const std::string &path);

/**
 * rename(2) wrapper returning success. Renaming a file that another
 * process already renamed away fails — which is exactly the
 * "first claimant wins" property the lease reaper relies on.
 */
bool renameFile(const std::string &from, const std::string &to);

/** unlink wrapper; true when the file is gone afterwards. */
bool removeFile(const std::string &path);

/** Milliseconds since the Unix epoch (lease expiry timestamps). */
int64_t wallClockMs();

} // namespace tea

#endif // TEA_UTIL_FSATOMIC_HH
