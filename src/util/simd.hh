/**
 * @file
 * Runtime SIMD instruction-set selection for the wide DTA planes.
 *
 * The compiled DTA backend ships the same plane-sweep kernels three
 * times: a portable uint64 build, an AVX2 build, and an AVX-512 build
 * (translation units compiled with the matching -m flags when the
 * CMake option TEA_SIMD is on and the compiler supports them). This
 * header is the xsimd-style façade that picks which build runs:
 *
 *  - compiledIsas() says which levels were compiled in (a build-time
 *    fact: the TEA_SIMD_AVX2 / TEA_SIMD_AVX512 definitions).
 *  - detectedIsa() is the best level the *CPU* supports among those,
 *    probed once via __builtin_cpu_supports.
 *  - activeIsa() is what kernels must dispatch on: the detected level,
 *    unless overridden by REPRO_SIMD={portable,avx2,avx512} or by
 *    setActiveIsa() (tests force the portable fallback this way and
 *    assert campaign outputs are identical).
 *
 * Every level computes bit-identical results — the lanes are
 * independent 64-bit words and independent doubles, so vector width
 * never changes a value. The switch is purely about throughput.
 */

#ifndef TEA_UTIL_SIMD_HH
#define TEA_UTIL_SIMD_HH

namespace tea::simd {

/** Instruction-set levels the DTA kernels are specialized for. */
enum class Isa : int
{
    Portable = 0, ///< plain uint64 SWAR, always available
    Avx2 = 1,     ///< 256-bit planes
    Avx512 = 2,   ///< 512-bit planes + masked lane recurrence
};

/** Human-readable level name ("portable", "avx2", "avx512"). */
const char *isaName(Isa isa);

/** Best level compiled into this binary (build-time constant). */
Isa bestCompiledIsa();

/** True when the level was compiled in (TEA_SIMD build option). */
bool isaCompiled(Isa isa);

/** Best compiled level this CPU can execute, probed once. */
Isa detectedIsa();

/**
 * The level kernels dispatch on: detectedIsa() unless REPRO_SIMD or
 * setActiveIsa() overrides it. An override above what the build or
 * CPU supports is clamped down with a warn — a typo can slow a run
 * down but never crash or change its results.
 */
Isa activeIsa();

/**
 * Force the dispatch level (tests / benches). Clamped like the env
 * override. Passing the current level is a no-op; engines re-resolve
 * their kernel tables on the next batch, so flipping mid-run is safe.
 */
void setActiveIsa(Isa isa);

/** Drop overrides and re-read REPRO_SIMD / CPUID on next activeIsa(). */
void resetActiveIsa();

} // namespace tea::simd

#endif // TEA_UTIL_SIMD_HH
