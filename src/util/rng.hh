/**
 * @file
 * Deterministic pseudo-random number generation (xoshiro256**).
 *
 * All stochastic behaviour in the framework (operand sampling, injection
 * site selection, process-variation jitter) flows through Rng so that
 * campaigns are exactly reproducible from a seed.
 */

#ifndef TEA_UTIL_RNG_HH
#define TEA_UTIL_RNG_HH

#include <array>
#include <cstdint>

namespace tea {

/**
 * xoshiro256** generator. Small, fast, and high quality; split() derives
 * statistically independent child streams so parallel campaign arms do
 * not share state.
 */
class Rng
{
  public:
    /** Seed via splitmix64 expansion of a single 64-bit value. */
    explicit Rng(uint64_t seed = 0x9e3779b97f4a7c15ULL);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** Uniform in [0, bound) without modulo bias. */
    uint64_t nextBounded(uint64_t bound);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Bernoulli draw with probability p. */
    bool nextBool(double p);

    /** Uniform in [lo, hi] inclusive. */
    int64_t nextRange(int64_t lo, int64_t hi);

    /** Standard normal via Box-Muller (uncached). */
    double nextGaussian();

    /**
     * Binomial(n, p) sample. Exact Bernoulli looping for small n,
     * Poisson inverse-transform for small means, normal approximation
     * (clamped to [0, n]) otherwise — accurate enough for injection
     * planning where p is small.
     */
    uint64_t nextBinomial(uint64_t n, double p);

    /** Poisson(lambda) via inverse transform (lambda modest). */
    uint64_t nextPoisson(double lambda);

    /** Derive an independent child generator, advancing this one. */
    Rng split();

    /**
     * Derive the independent substream with the given id, WITHOUT
     * advancing this generator: fork(i) is a pure function of the
     * current state and i (splitmix64 over {state, streamId}). Parallel
     * campaigns seed task i from fork(i) so results are bit-identical
     * for any thread count and task execution order.
     */
    Rng fork(uint64_t streamId) const;

    /**
     * The full xoshiro256** state, for serialization. A generator
     * restored with fromState() produces the identical stream — this
     * is how fleet work units ship a cell's exact substream to a
     * worker process so N-process campaigns stay bit-identical.
     */
    std::array<uint64_t, 4> state() const
    {
        return {s_[0], s_[1], s_[2], s_[3]};
    }
    static Rng fromState(const std::array<uint64_t, 4> &state);

  private:
    uint64_t s_[4];
};

} // namespace tea

#endif // TEA_UTIL_RNG_HH
