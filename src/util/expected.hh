/**
 * @file
 * Expected<T>: a value or a recoverable Error (util/errors.hh).
 *
 * The containment layer's alternative to fatal(): constructor
 * factories, cache loaders and journal openers return Expected so that
 * a failure in one campaign cell degrades that cell instead of
 * aborting the whole process. Accessing the wrong alternative is a
 * programming error and panics.
 */

#ifndef TEA_UTIL_EXPECTED_HH
#define TEA_UTIL_EXPECTED_HH

#include <utility>
#include <variant>

#include "util/errors.hh"
#include "util/logging.hh"

namespace tea {

template <typename T>
class Expected
{
  public:
    Expected(T value) : v_(std::move(value)) {}
    Expected(Error error) : v_(std::move(error))
    {
        panic_if(std::get<Error>(v_).ok(),
                 "Expected constructed from a non-error Error");
    }

    bool ok() const { return std::holds_alternative<T>(v_); }
    explicit operator bool() const { return ok(); }

    const T &value() const &
    {
        panic_if(!ok(), "Expected::value() on error: %s",
                 std::get<Error>(v_).describe().c_str());
        return std::get<T>(v_);
    }
    T &value() &
    {
        panic_if(!ok(), "Expected::value() on error: %s",
                 std::get<Error>(v_).describe().c_str());
        return std::get<T>(v_);
    }
    /** Move the value out (factory-return idiom). */
    T take()
    {
        panic_if(!ok(), "Expected::take() on error: %s",
                 std::get<Error>(v_).describe().c_str());
        return std::move(std::get<T>(v_));
    }

    const Error &error() const
    {
        panic_if(ok(), "Expected::error() on a value");
        return std::get<Error>(v_);
    }

  private:
    std::variant<T, Error> v_;
};

/** Expected<void>: success, or a recoverable Error. */
template <>
class Expected<void>
{
  public:
    Expected() = default;
    Expected(Error error) : err_(std::move(error))
    {
        panic_if(err_.ok(), "Expected constructed from a non-error Error");
    }

    bool ok() const { return err_.ok(); }
    explicit operator bool() const { return ok(); }

    const Error &error() const
    {
        panic_if(ok(), "Expected::error() on a value");
        return err_;
    }

  private:
    Error err_;
};

} // namespace tea

#endif // TEA_UTIL_EXPECTED_HH
