/**
 * @file
 * Logging and error-reporting primitives in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump can capture the state.
 * fatal()  — the user asked for something impossible (bad configuration,
 *            invalid arguments); exits with status 1.
 * warn()   — something is suspicious but execution can continue.
 * inform() — plain status output.
 */

#ifndef TEA_UTIL_LOGGING_HH
#define TEA_UTIL_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tea {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

/** Render a printf-style format string into a std::string. */
std::string vformat(const char *fmt, va_list ap);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/** Whether warn() output is suppressed (useful in noisy campaigns). */
void setQuiet(bool quiet);
bool quiet();

} // namespace tea

#define panic(...)                                                          \
    ::tea::detail::panicImpl(__FILE__, __LINE__,                            \
                             ::tea::detail::format(__VA_ARGS__))

#define fatal(...)                                                          \
    ::tea::detail::fatalImpl(__FILE__, __LINE__,                            \
                             ::tea::detail::format(__VA_ARGS__))

#define warn(...)                                                           \
    ::tea::detail::warnImpl(__FILE__, __LINE__,                             \
                            ::tea::detail::format(__VA_ARGS__))

#define inform(...)                                                         \
    ::tea::detail::informImpl(::tea::detail::format(__VA_ARGS__))

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            panic(__VA_ARGS__);                                             \
    } while (0)

#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            fatal(__VA_ARGS__);                                             \
    } while (0)

#endif // TEA_UTIL_LOGGING_HH
