/**
 * @file
 * Logging and error-reporting primitives in the gem5 idiom.
 *
 * panic()  — an internal invariant was violated (a bug in this library);
 *            aborts so a debugger/core dump can capture the state.
 * fatal()  — the user asked for something impossible (bad configuration,
 *            invalid arguments); exits with status 1.
 * warn()   — something is suspicious but execution can continue.
 * inform() — plain status output.
 *
 * Every diagnostic routes through one leveled sink: `REPRO_LOG_LEVEL`
 * (silent|warn|info, or 0|1|2) picks how much reaches stderr/stdout,
 * so CI can run benches quiet (`REPRO_LOG_LEVEL=silent`) without
 * per-call-site flags. logWarn()/logInfo() are the function-style
 * spellings for call sites that do not want the file:line suffix the
 * warn() macro appends. panic/fatal are never suppressed.
 */

#ifndef TEA_UTIL_LOGGING_HH
#define TEA_UTIL_LOGGING_HH

#include <cstdarg>
#include <cstdio>
#include <cstdlib>
#include <sstream>
#include <string>

namespace tea {

namespace detail {

[[noreturn]] void panicImpl(const char *file, int line,
                            const std::string &msg);
[[noreturn]] void fatalImpl(const char *file, int line,
                            const std::string &msg);
void warnImpl(const char *file, int line, const std::string &msg);
void informImpl(const std::string &msg);

/** Render a printf-style format string into a std::string. */
std::string vformat(const char *fmt, va_list ap);
std::string format(const char *fmt, ...)
    __attribute__((format(printf, 1, 2)));

} // namespace detail

/**
 * Verbosity threshold for warn()/inform()/logWarn()/logInfo().
 * panic()/fatal() ignore it: a dying process always says why.
 */
enum class LogLevel {
    Silent = 0, ///< suppress warnings and status output
    Warn = 1,   ///< warnings only
    Info = 2,   ///< warnings + status output (the default)
};

/**
 * Effective level: setLogLevel() if called, else REPRO_LOG_LEVEL
 * ("silent"/"warn"/"info" or 0/1/2, read once), else Info.
 * setQuiet(true) additionally caps the level at Silent for warnings
 * (its historical contract).
 */
LogLevel logLevel();
void setLogLevel(LogLevel level);

/**
 * Function-style leveled diagnostics for call sites that do not want
 * the file:line suffix the warn() macro appends (e.g. user-facing
 * bench diagnostics). Same sinks and REPRO_LOG_LEVEL gate as the
 * macros: logWarn -> stderr at Warn+, logInfo -> stdout at Info.
 */
void logWarn(const char *fmt, ...) __attribute__((format(printf, 1, 2)));
void logInfo(const char *fmt, ...) __attribute__((format(printf, 1, 2)));

/** Whether warn() output is suppressed (useful in noisy campaigns). */
void setQuiet(bool quiet);
bool quiet();

} // namespace tea

#define panic(...)                                                          \
    ::tea::detail::panicImpl(__FILE__, __LINE__,                            \
                             ::tea::detail::format(__VA_ARGS__))

#define fatal(...)                                                          \
    ::tea::detail::fatalImpl(__FILE__, __LINE__,                            \
                             ::tea::detail::format(__VA_ARGS__))

#define warn(...)                                                           \
    ::tea::detail::warnImpl(__FILE__, __LINE__,                             \
                            ::tea::detail::format(__VA_ARGS__))

#define inform(...)                                                         \
    ::tea::detail::informImpl(::tea::detail::format(__VA_ARGS__))

/** panic() unless the condition holds. */
#define panic_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            panic(__VA_ARGS__);                                             \
    } while (0)

#define fatal_if(cond, ...)                                                 \
    do {                                                                    \
        if (cond)                                                           \
            fatal(__VA_ARGS__);                                             \
    } while (0)

#endif // TEA_UTIL_LOGGING_HH
