/**
 * @file
 * Streaming statistics and histogramming used by DTA campaigns, BER
 * extraction, and injection-outcome reporting.
 */

#ifndef TEA_UTIL_STATS_HH
#define TEA_UTIL_STATS_HH

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tea {

/**
 * Welford-style streaming mean/variance/min/max accumulator.
 */
class StreamingStats
{
  public:
    void sample(double x);

    uint64_t count() const { return n_; }
    double mean() const { return n_ ? mean_ : 0.0; }
    double variance() const;
    double stddev() const;
    double min() const { return n_ ? min_ : 0.0; }
    double max() const { return n_ ? max_ : 0.0; }
    double sum() const { return n_ ? mean_ * static_cast<double>(n_) : 0.0; }

    /** Merge another accumulator into this one (parallel-combine rule). */
    void merge(const StreamingStats &other);

    void reset();

  private:
    uint64_t n_ = 0;
    double mean_ = 0.0;
    double m2_ = 0.0;
    double min_ = 0.0;
    double max_ = 0.0;
};

/**
 * Fixed-width linear histogram over [lo, hi); samples outside the range
 * land in saturating under/overflow buckets.
 */
class Histogram
{
  public:
    Histogram(double lo, double hi, size_t buckets);

    void sample(double x, uint64_t weight = 1);

    size_t numBuckets() const { return counts_.size(); }
    uint64_t bucketCount(size_t i) const { return counts_[i]; }
    double bucketLo(size_t i) const;
    double bucketHi(size_t i) const;
    uint64_t underflow() const { return underflow_; }
    uint64_t overflow() const { return overflow_; }
    uint64_t total() const { return total_; }

    /** Fraction of samples in bucket i (0 if empty histogram). */
    double fraction(size_t i) const;

    /** Render as a simple ASCII bar chart, one line per bucket. */
    std::string render(const std::string &label, int barWidth = 50) const;

  private:
    double lo_, hi_;
    std::vector<uint64_t> counts_;
    uint64_t underflow_ = 0;
    uint64_t overflow_ = 0;
    uint64_t total_ = 0;
};

/**
 * Counter keyed by string — used for outcome tallies (Masked/SDC/...).
 */
class CategoryCounter
{
  public:
    void add(const std::string &key, uint64_t n = 1);
    uint64_t get(const std::string &key) const;
    uint64_t total() const { return total_; }
    double fraction(const std::string &key) const;
    const std::map<std::string, uint64_t> &counts() const { return counts_; }

  private:
    std::map<std::string, uint64_t> counts_;
    uint64_t total_ = 0;
};

} // namespace tea

#endif // TEA_UTIL_STATS_HH
