/**
 * @file
 * IEEE CRC-32 (the zlib/PNG polynomial, reflected 0xEDB88320).
 *
 * Guards the durability layer's on-disk artifacts: characterization
 * caches and campaign journals carry a CRC so that truncated or
 * bit-rotted files are detected and quarantined instead of silently
 * poisoning every model built from them.
 */

#ifndef TEA_UTIL_CRC32_HH
#define TEA_UTIL_CRC32_HH

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace tea {

/**
 * CRC-32 of a byte range. `seed` chains blocks: crc32(b, crc32(a))
 * equals crc32(a ++ b), so streamed producers need no buffering.
 */
inline uint32_t
crc32(const void *data, size_t len, uint32_t seed = 0)
{
    static const std::array<uint32_t, 256> table = [] {
        std::array<uint32_t, 256> t{};
        for (uint32_t i = 0; i < 256; ++i) {
            uint32_t c = i;
            for (int k = 0; k < 8; ++k)
                c = (c & 1) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
            t[i] = c;
        }
        return t;
    }();
    uint32_t crc = ~seed;
    const auto *p = static_cast<const uint8_t *>(data);
    for (size_t i = 0; i < len; ++i)
        crc = table[(crc ^ p[i]) & 0xffu] ^ (crc >> 8);
    return ~crc;
}

inline uint32_t
crc32(std::string_view s, uint32_t seed = 0)
{
    return crc32(s.data(), s.size(), seed);
}

} // namespace tea

#endif // TEA_UTIL_CRC32_HH
