#include "util/table.hh"

#include <algorithm>
#include <cstdio>
#include <sstream>

#include "util/logging.hh"

namespace tea {

Table::Table(std::vector<std::string> headers) : headers_(std::move(headers))
{
    panic_if(headers_.empty(), "Table needs at least one column");
}

void
Table::addRow(std::vector<std::string> row)
{
    panic_if(row.size() != headers_.size(),
             "Table row arity %zu != header arity %zu", row.size(),
             headers_.size());
    rows_.push_back(std::move(row));
}

std::string
Table::num(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f", precision, v);
    return buf;
}

std::string
Table::sci(double v, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*e", precision, v);
    return buf;
}

std::string
Table::pct(double v01, int precision)
{
    char buf[64];
    std::snprintf(buf, sizeof(buf), "%.*f%%", precision, v01 * 100.0);
    return buf;
}

std::string
Table::render(const std::string &title) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    auto renderRow = [&](const std::vector<std::string> &row) {
        std::string line = "|";
        for (size_t c = 0; c < row.size(); ++c) {
            line += " " + row[c] +
                    std::string(widths[c] - row[c].size(), ' ') + " |";
        }
        return line + "\n";
    };

    std::string rule = "+";
    for (auto w : widths)
        rule += std::string(w + 2, '-') + "+";
    rule += "\n";

    std::ostringstream os;
    if (!title.empty())
        os << title << "\n";
    os << rule << renderRow(headers_) << rule;
    for (const auto &row : rows_)
        os << renderRow(row);
    os << rule;
    return os.str();
}

std::string
Table::csv() const
{
    auto line = [](const std::vector<std::string> &row) {
        std::string out;
        for (size_t c = 0; c < row.size(); ++c) {
            if (c)
                out += ",";
            out += row[c];
        }
        return out + "\n";
    };
    std::string out = line(headers_);
    for (const auto &row : rows_)
        out += line(row);
    return out;
}

} // namespace tea
