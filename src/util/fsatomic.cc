#include "util/fsatomic.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <system_error>

namespace tea {

namespace {

/**
 * Best-effort fsync of `path`'s parent directory so the rename that
 * published `path` survives power failure. Some filesystems refuse
 * directory fsync; that only weakens durability, never atomicity.
 */
void
fsyncParentDir(const std::string &path)
{
    size_t slash = path.find_last_of('/');
    std::string dir = slash == std::string::npos
                          ? std::string(".")
                          : path.substr(0, slash);
    if (dir.empty())
        dir = "/";
    int fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
    if (fd < 0)
        return;
    ::fsync(fd);
    ::close(fd);
}

} // namespace

bool
atomicWriteFile(const std::string &path, const std::string &contents,
                bool durable)
{
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".tmp.%ld",
                  static_cast<long>(::getpid()));
    std::string tmp = path + suffix;
    int fd = ::open(tmp.c_str(), O_CREAT | O_TRUNC | O_WRONLY, 0644);
    if (fd < 0)
        return false;
    size_t off = 0;
    while (off < contents.size()) {
        ssize_t n = ::write(fd, contents.data() + off,
                            contents.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            ::unlink(tmp.c_str());
            return false;
        }
        off += static_cast<size_t>(n);
    }
    // The bytes must reach stable storage *before* the rename
    // publishes them, or power failure can leave a complete-looking
    // but empty/torn file at `path`.
    if (durable && ::fsync(fd) != 0) {
        ::close(fd);
        ::unlink(tmp.c_str());
        return false;
    }
    if (::close(fd) != 0) {
        ::unlink(tmp.c_str());
        return false;
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    if (durable)
        fsyncParentDir(path);
    return true;
}

bool
createExclusive(const std::string &path, const std::string &contents)
{
    int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false;
    size_t off = 0;
    while (off < contents.size()) {
        ssize_t n = ::write(fd, contents.data() + off,
                            contents.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            ::unlink(path.c_str());
            return false;
        }
        off += static_cast<size_t>(n);
    }
    ::close(fd);
    return true;
}

std::optional<std::string>
readFileToString(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (in.bad())
        return std::nullopt;
    return data;
}

bool
renameFile(const std::string &from, const std::string &to)
{
    return std::rename(from.c_str(), to.c_str()) == 0;
}

bool
removeFile(const std::string &path)
{
    return ::unlink(path.c_str()) == 0 || errno == ENOENT;
}

int64_t
wallClockMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // namespace tea
