#include "util/fsatomic.hh"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <chrono>
#include <cstdio>
#include <fstream>
#include <system_error>

namespace tea {

bool
atomicWriteFile(const std::string &path, const std::string &contents)
{
    char suffix[32];
    std::snprintf(suffix, sizeof(suffix), ".tmp.%ld",
                  static_cast<long>(::getpid()));
    std::string tmp = path + suffix;
    {
        std::ofstream out(tmp, std::ios::trunc | std::ios::binary);
        if (!out)
            return false;
        out << contents;
        out.flush();
        if (!out) {
            std::remove(tmp.c_str());
            return false;
        }
    }
    if (std::rename(tmp.c_str(), path.c_str()) != 0) {
        std::remove(tmp.c_str());
        return false;
    }
    return true;
}

bool
createExclusive(const std::string &path, const std::string &contents)
{
    int fd = ::open(path.c_str(), O_CREAT | O_EXCL | O_WRONLY, 0644);
    if (fd < 0)
        return false;
    size_t off = 0;
    while (off < contents.size()) {
        ssize_t n = ::write(fd, contents.data() + off,
                            contents.size() - off);
        if (n < 0) {
            if (errno == EINTR)
                continue;
            ::close(fd);
            ::unlink(path.c_str());
            return false;
        }
        off += static_cast<size_t>(n);
    }
    ::close(fd);
    return true;
}

std::optional<std::string>
readFileToString(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return std::nullopt;
    std::string data((std::istreambuf_iterator<char>(in)),
                     std::istreambuf_iterator<char>());
    if (in.bad())
        return std::nullopt;
    return data;
}

bool
renameFile(const std::string &from, const std::string &to)
{
    return std::rename(from.c_str(), to.c_str()) == 0;
}

bool
removeFile(const std::string &path)
{
    return ::unlink(path.c_str()) == 0 || errno == ENOENT;
}

int64_t
wallClockMs()
{
    return std::chrono::duration_cast<std::chrono::milliseconds>(
               std::chrono::system_clock::now().time_since_epoch())
        .count();
}

} // namespace tea
