/**
 * @file
 * Reusable worker-thread pool with a chunked parallel-for API.
 *
 * Campaign layers are embarrassingly parallel (independent DTA shards,
 * independent injection runs) but must stay bit-deterministic for any
 * thread count. The pool therefore promises nothing about *which*
 * worker executes a task — tasks are handed out dynamically from an
 * atomic counter — and callers make per-task results depend only on the
 * task index (per-task forked Rng, per-shard state reset), never on
 * the worker assignment or completion order.
 */

#ifndef TEA_UTIL_THREADPOOL_HH
#define TEA_UTIL_THREADPOOL_HH

#include <condition_variable>
#include <cstdint>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace tea {

/**
 * Fixed-size pool of worker threads. The calling thread participates
 * in every parallelFor as worker 0, so a pool of size 1 spawns no
 * threads at all and runs tasks inline — the serial and parallel code
 * paths are literally the same code.
 */
class ThreadPool
{
  public:
    /**
     * @param threads worker count including the caller; 0 selects
     *        defaultThreads() (REPRO_THREADS or hardware concurrency).
     */
    explicit ThreadPool(unsigned threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    unsigned numThreads() const { return numThreads_; }

    /**
     * Run fn(taskIndex, workerIndex) for every index in [begin, end)
     * and block until all tasks finish. workerIndex is in
     * [0, numThreads()) and identifies the executing worker so tasks
     * can use per-worker scratch state (which they must re-initialize
     * per task if results are to be thread-count-invariant). Tasks are
     * claimed one index at a time from an atomic cursor, so indices
     * should be coarse shards, not single cheap iterations. The first
     * exception thrown by a task is rethrown on the calling thread
     * after the loop drains.
     */
    void parallelFor(uint64_t begin, uint64_t end,
                     const std::function<void(uint64_t, unsigned)> &fn);

    /** parallelFor that collects fn's return values, in index order. */
    template <typename T, typename Fn>
    std::vector<T> parallelMap(uint64_t n, Fn &&fn)
    {
        std::vector<T> out(n);
        parallelFor(0, n, [&](uint64_t i, unsigned w) {
            out[i] = fn(i, w);
        });
        return out;
    }

    /**
     * Thread count from the REPRO_THREADS environment variable, or
     * hardware_concurrency() when unset/invalid (never less than 1).
     * If REPRO_THREADS holds a comma-separated sweep list, the first
     * entry governs this default.
     */
    static unsigned defaultThreads();

    /** Lazily-constructed process-wide pool of defaultThreads(). */
    static ThreadPool &global();

    /**
     * Process-wide telemetry across every pool instance: total tasks
     * claimed by runTasks and total nanoseconds workers spent parked
     * waiting for a job. Plain monotonic counters (no reset) so the
     * observability layer can sample them at export time without
     * tea_util depending on tea_obs.
     */
    static uint64_t tasksExecuted();
    static uint64_t idleNanos();

  private:
    struct Job;

    void workerLoop(unsigned workerIndex);
    void runTasks(Job &job, unsigned workerIndex);

    unsigned numThreads_;
    std::vector<std::thread> workers_;
    std::mutex mutex_;
    std::condition_variable wake_;   ///< workers wait for a job
    std::condition_variable done_;   ///< caller waits for completion
    Job *job_ = nullptr;             ///< current job (guarded by mutex_)
    uint64_t jobSerial_ = 0;         ///< bumps per job so workers rewake
    bool stopping_ = false;
};

} // namespace tea

#endif // TEA_UTIL_THREADPOOL_HH
