#include "util/logging.hh"

#include <atomic>
#include <cstdarg>
#include <cstring>
#include <iostream>

namespace tea {

namespace {

bool quietFlag = false;

constexpr int kLevelUnset = -1;
std::atomic<int> levelOverride{kLevelUnset}; ///< setLogLevel() wins

LogLevel
levelFromEnv()
{
    const char *env = std::getenv("REPRO_LOG_LEVEL");
    if (!env || env[0] == '\0')
        return LogLevel::Info;
    if (!std::strcmp(env, "silent") || !std::strcmp(env, "0"))
        return LogLevel::Silent;
    if (!std::strcmp(env, "warn") || !std::strcmp(env, "1"))
        return LogLevel::Warn;
    if (!std::strcmp(env, "info") || !std::strcmp(env, "2"))
        return LogLevel::Info;
    std::fprintf(stderr,
                 "warn: ignoring invalid REPRO_LOG_LEVEL='%s' "
                 "(want silent|warn|info or 0|1|2)\n",
                 env);
    return LogLevel::Info;
}

} // namespace

LogLevel
logLevel()
{
    int forced = levelOverride.load(std::memory_order_relaxed);
    if (forced != kLevelUnset)
        return static_cast<LogLevel>(forced);
    static const LogLevel fromEnv = levelFromEnv();
    return fromEnv;
}

void
setLogLevel(LogLevel level)
{
    levelOverride.store(static_cast<int>(level),
                        std::memory_order_relaxed);
}

void
logWarn(const char *fmt, ...)
{
    if (quietFlag || logLevel() < LogLevel::Warn)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stderr, "warn: %s\n", msg.c_str());
}

void
logInfo(const char *fmt, ...)
{
    if (logLevel() < LogLevel::Info)
        return;
    va_list ap;
    va_start(ap, fmt);
    std::string msg = detail::vformat(fmt, ap);
    va_end(ap);
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

namespace detail {

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    if (!quietFlag && logLevel() >= LogLevel::Warn)
        std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    if (logLevel() >= LogLevel::Info)
        std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace tea
