#include "util/logging.hh"

#include <cstdarg>
#include <iostream>

namespace tea {

namespace {
bool quietFlag = false;
} // namespace

void
setQuiet(bool q)
{
    quietFlag = q;
}

bool
quiet()
{
    return quietFlag;
}

namespace detail {

std::string
vformat(const char *fmt, va_list ap)
{
    va_list ap2;
    va_copy(ap2, ap);
    int n = std::vsnprintf(nullptr, 0, fmt, ap);
    if (n < 0) {
        va_end(ap2);
        return std::string(fmt);
    }
    std::string out(static_cast<size_t>(n), '\0');
    std::vsnprintf(out.data(), out.size() + 1, fmt, ap2);
    va_end(ap2);
    return out;
}

std::string
format(const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    std::string out = vformat(fmt, ap);
    va_end(ap);
    return out;
}

void
panicImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "panic: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::abort();
}

void
fatalImpl(const char *file, int line, const std::string &msg)
{
    std::fprintf(stderr, "fatal: %s\n  at %s:%d\n", msg.c_str(), file, line);
    std::exit(1);
}

void
warnImpl(const char *file, int line, const std::string &msg)
{
    if (!quietFlag)
        std::fprintf(stderr, "warn: %s (%s:%d)\n", msg.c_str(), file, line);
}

void
informImpl(const std::string &msg)
{
    std::fprintf(stdout, "info: %s\n", msg.c_str());
}

} // namespace detail
} // namespace tea
