/**
 * @file
 * Plain-text table rendering for the paper-style result printouts every
 * bench binary emits (aligned columns, optional CSV).
 */

#ifndef TEA_UTIL_TABLE_HH
#define TEA_UTIL_TABLE_HH

#include <string>
#include <vector>

namespace tea {

/**
 * Accumulates rows of strings and renders them with aligned columns.
 */
class Table
{
  public:
    explicit Table(std::vector<std::string> headers);

    /** Append a row; must match the header arity. */
    void addRow(std::vector<std::string> row);

    /** Convenience: format a double with the given precision. */
    static std::string num(double v, int precision = 3);
    /** Scientific notation, e.g. 1.25e-03. */
    static std::string sci(double v, int precision = 2);
    /** Percent with one decimal, e.g. 12.5%. */
    static std::string pct(double v01, int precision = 1);

    /** Render with ASCII column alignment. */
    std::string render(const std::string &title = "") const;

    /** Render as CSV (headers + rows). */
    std::string csv() const;

    size_t numRows() const { return rows_.size(); }

  private:
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace tea

#endif // TEA_UTIL_TABLE_HH
