#include "util/watchdog.hh"

#include <csignal>
#include <mutex>

namespace tea {

CancelToken &
CancelToken::processWide()
{
    static CancelToken token;
    return token;
}

namespace {

extern "C" void
shutdownHandler(int)
{
    // Only the lock-free atomic store; everything else (journal flush,
    // partial-result printing) happens on the campaign threads when
    // they next poll.
    CancelToken::processWide().cancel();
}

} // namespace

void
installShutdownHandlers()
{
    static std::once_flag once;
    std::call_once(once, [] {
        std::signal(SIGINT, shutdownHandler);
        std::signal(SIGTERM, shutdownHandler);
    });
}

} // namespace tea
