#include "util/stats.hh"

#include <algorithm>
#include <cmath>
#include <sstream>

#include "util/logging.hh"

namespace tea {

void
StreamingStats::sample(double x)
{
    if (n_ == 0) {
        min_ = max_ = x;
    } else {
        min_ = std::min(min_, x);
        max_ = std::max(max_, x);
    }
    ++n_;
    double delta = x - mean_;
    mean_ += delta / static_cast<double>(n_);
    m2_ += delta * (x - mean_);
}

double
StreamingStats::variance() const
{
    if (n_ < 2)
        return 0.0;
    return m2_ / static_cast<double>(n_ - 1);
}

double
StreamingStats::stddev() const
{
    return std::sqrt(variance());
}

void
StreamingStats::merge(const StreamingStats &other)
{
    if (other.n_ == 0)
        return;
    if (n_ == 0) {
        *this = other;
        return;
    }
    uint64_t n = n_ + other.n_;
    double delta = other.mean_ - mean_;
    double mean = mean_ + delta * static_cast<double>(other.n_) /
                              static_cast<double>(n);
    m2_ = m2_ + other.m2_ +
          delta * delta * static_cast<double>(n_) *
              static_cast<double>(other.n_) / static_cast<double>(n);
    mean_ = mean;
    n_ = n;
    min_ = std::min(min_, other.min_);
    max_ = std::max(max_, other.max_);
}

void
StreamingStats::reset()
{
    *this = StreamingStats();
}

Histogram::Histogram(double lo, double hi, size_t buckets)
    : lo_(lo), hi_(hi), counts_(buckets, 0)
{
    panic_if(buckets == 0, "Histogram needs at least one bucket");
    panic_if(!(lo < hi), "Histogram range must be non-empty");
}

void
Histogram::sample(double x, uint64_t weight)
{
    total_ += weight;
    if (x < lo_) {
        underflow_ += weight;
        return;
    }
    if (x >= hi_) {
        overflow_ += weight;
        return;
    }
    auto idx = static_cast<size_t>((x - lo_) / (hi_ - lo_) *
                                   static_cast<double>(counts_.size()));
    idx = std::min(idx, counts_.size() - 1);
    counts_[idx] += weight;
}

double
Histogram::bucketLo(size_t i) const
{
    return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                     static_cast<double>(counts_.size());
}

double
Histogram::bucketHi(size_t i) const
{
    return bucketLo(i + 1);
}

double
Histogram::fraction(size_t i) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(counts_[i]) / static_cast<double>(total_);
}

std::string
Histogram::render(const std::string &label, int barWidth) const
{
    std::ostringstream os;
    os << label << " (n=" << total_ << ")\n";
    uint64_t peak = 1;
    for (auto c : counts_)
        peak = std::max(peak, c);
    for (size_t i = 0; i < counts_.size(); ++i) {
        int len = static_cast<int>(
            static_cast<double>(counts_[i]) / static_cast<double>(peak) *
            barWidth);
        char buf[64];
        std::snprintf(buf, sizeof(buf), "[%10.4g, %10.4g) %8llu ",
                      bucketLo(i), bucketHi(i),
                      static_cast<unsigned long long>(counts_[i]));
        os << buf << std::string(static_cast<size_t>(len), '#') << "\n";
    }
    if (underflow_)
        os << "  underflow: " << underflow_ << "\n";
    if (overflow_)
        os << "  overflow:  " << overflow_ << "\n";
    return os.str();
}

void
CategoryCounter::add(const std::string &key, uint64_t n)
{
    counts_[key] += n;
    total_ += n;
}

uint64_t
CategoryCounter::get(const std::string &key) const
{
    auto it = counts_.find(key);
    return it == counts_.end() ? 0 : it->second;
}

double
CategoryCounter::fraction(const std::string &key) const
{
    if (total_ == 0)
        return 0.0;
    return static_cast<double>(get(key)) / static_cast<double>(total_);
}

} // namespace tea
