/**
 * @file
 * Cooperative cancellation and per-run wall-clock watchdogs.
 *
 * Campaign work is cut off, never killed: a CancelToken is a shared
 * flag that signal handlers (SIGINT/SIGTERM) and tests set, and a
 * Watchdog combines that flag with an optional wall-clock deadline
 * armed at construction. Long inner loops (OooSim::run, DTA shards)
 * poll the watchdog every few thousand iterations and unwind in an
 * orderly way — journals get flushed, partial results get printed, and
 * a pathologically slow run stops occupying a worker thread.
 *
 * Determinism note: cancellation and deadlines are *infrastructure*
 * events. A deadline-cut run is recorded as an EngineFault (excluded
 * from AVM), and a cancelled run is simply not recorded — so campaign
 * statistics never depend on wall-clock behaviour.
 */

#ifndef TEA_UTIL_WATCHDOG_HH
#define TEA_UTIL_WATCHDOG_HH

#include <atomic>
#include <chrono>
#include <cstdint>

namespace tea {

/** Shared stop flag; safe to set from a signal handler. */
class CancelToken
{
  public:
    void cancel() noexcept
    {
        flag_.store(true, std::memory_order_release);
    }
    bool cancelled() const noexcept
    {
        return flag_.load(std::memory_order_acquire);
    }
    /** Re-arm (tests; a process handles one shutdown in real use). */
    void reset() noexcept
    {
        flag_.store(false, std::memory_order_release);
    }

    /** The token shutdown signal handlers cancel. */
    static CancelToken &processWide();

  private:
    std::atomic<bool> flag_{false};
};

/**
 * Install SIGINT/SIGTERM handlers that cancel processWide().
 * Idempotent; the handler only sets the atomic flag (async-signal-safe)
 * and the campaign layers do the orderly unwind.
 */
void installShutdownHandlers();

/**
 * One run's stop condition: an optional shared CancelToken plus an
 * optional wall-clock deadline measured from construction
 * (deadlineMs <= 0 disables the deadline). Cheap to poll.
 */
class Watchdog
{
  public:
    enum class Stop
    {
        None,
        Cancelled,
        Deadline,
    };

    Watchdog() = default;
    explicit Watchdog(const CancelToken *token, int64_t deadlineMs = 0)
        : token_(token), deadlineMs_(deadlineMs)
    {
        if (deadlineMs_ > 0)
            deadline_ = std::chrono::steady_clock::now() +
                        std::chrono::milliseconds(deadlineMs_);
    }

    Stop poll() const
    {
        if (token_ && token_->cancelled())
            return Stop::Cancelled;
        if (deadlineMs_ > 0 &&
            std::chrono::steady_clock::now() >= deadline_)
            return Stop::Deadline;
        return Stop::None;
    }

  private:
    const CancelToken *token_ = nullptr;
    int64_t deadlineMs_ = 0;
    std::chrono::steady_clock::time_point deadline_{};
};

} // namespace tea

#endif // TEA_UTIL_WATCHDOG_HH
