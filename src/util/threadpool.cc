#include "util/threadpool.hh"

#include <atomic>
#include <cerrno>
#include <chrono>
#include <cstdlib>
#include <exception>

#include "util/logging.hh"

namespace tea {

namespace {
// Process-wide across all pool instances; sampled by the obs layer.
std::atomic<uint64_t> totalTasks{0};
std::atomic<uint64_t> totalIdleNanos{0};
} // namespace

/** One parallelFor invocation: a shared cursor plus completion state. */
struct ThreadPool::Job
{
    uint64_t begin = 0;
    uint64_t end = 0;
    const std::function<void(uint64_t, unsigned)> *fn = nullptr;
    std::atomic<uint64_t> cursor{0};
    std::atomic<unsigned> active{0}; ///< workers still inside runTasks
    std::exception_ptr error;        ///< first task exception (mutex_)
};

ThreadPool::ThreadPool(unsigned threads)
    : numThreads_(threads ? threads : defaultThreads())
{
    if (numThreads_ == 0)
        numThreads_ = 1;
    workers_.reserve(numThreads_ - 1);
    for (unsigned w = 1; w < numThreads_; ++w)
        workers_.emplace_back([this, w] { workerLoop(w); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    wake_.notify_all();
    for (auto &t : workers_)
        t.join();
}

void
ThreadPool::runTasks(Job &job, unsigned workerIndex)
{
    for (;;) {
        uint64_t i = job.cursor.fetch_add(1, std::memory_order_relaxed);
        if (i >= job.end)
            break;
        totalTasks.fetch_add(1, std::memory_order_relaxed);
        try {
            (*job.fn)(i, workerIndex);
        } catch (...) {
            std::lock_guard<std::mutex> lock(mutex_);
            if (!job.error)
                job.error = std::current_exception();
        }
    }
}

void
ThreadPool::workerLoop(unsigned workerIndex)
{
    uint64_t seen = 0;
    for (;;) {
        Job *job = nullptr;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            auto idleFrom = std::chrono::steady_clock::now();
            wake_.wait(lock, [&] {
                return stopping_ || (job_ && jobSerial_ != seen);
            });
            totalIdleNanos.fetch_add(
                std::chrono::duration_cast<std::chrono::nanoseconds>(
                    std::chrono::steady_clock::now() - idleFrom)
                    .count(),
                std::memory_order_relaxed);
            if (stopping_)
                return;
            seen = jobSerial_;
            job = job_;
            job->active.fetch_add(1, std::memory_order_relaxed);
        }
        runTasks(*job, workerIndex);
        if (job->active.fetch_sub(1, std::memory_order_acq_rel) == 1)
            done_.notify_all();
    }
}

void
ThreadPool::parallelFor(uint64_t begin, uint64_t end,
                        const std::function<void(uint64_t, unsigned)> &fn)
{
    if (begin >= end)
        return;
    Job job;
    job.begin = begin;
    job.end = end;
    job.fn = &fn;
    job.cursor.store(begin, std::memory_order_relaxed);

    if (numThreads_ > 1) {
        {
            std::lock_guard<std::mutex> lock(mutex_);
            job_ = &job;
            ++jobSerial_;
        }
        wake_.notify_all();
    }

    // The caller is worker 0.
    runTasks(job, 0);

    if (numThreads_ > 1) {
        std::unique_lock<std::mutex> lock(mutex_);
        done_.wait(lock, [&] {
            return job.active.load(std::memory_order_acquire) == 0;
        });
        job_ = nullptr;
    }
    if (job.error)
        std::rethrow_exception(job.error);
}

unsigned
ThreadPool::defaultThreads()
{
    if (const char *env = std::getenv("REPRO_THREADS")) {
        // Accept "4" or a sweep list "1,2,4": the first entry governs.
        // The field must be a clean integer ending at '\0' or ',' —
        // "4abc" is a typo, not 4 threads.
        errno = 0;
        char *end = nullptr;
        long n = std::strtol(env, &end, 10);
        bool clean = end != env && (*end == '\0' || *end == ',') &&
                     errno != ERANGE;
        if (clean && n > 0) {
            constexpr long kMaxThreads = 1024;
            if (n > kMaxThreads) {
                warn("clamping REPRO_THREADS=%ld to %ld", n,
                     kMaxThreads);
                n = kMaxThreads;
            }
            return static_cast<unsigned>(n);
        }
        warn("ignoring invalid REPRO_THREADS='%s'", env);
    }
    unsigned hw = std::thread::hardware_concurrency();
    return hw ? hw : 1;
}

ThreadPool &
ThreadPool::global()
{
    static ThreadPool pool(defaultThreads());
    return pool;
}

uint64_t
ThreadPool::tasksExecuted()
{
    return totalTasks.load(std::memory_order_relaxed);
}

uint64_t
ThreadPool::idleNanos()
{
    return totalIdleNanos.load(std::memory_order_relaxed);
}

} // namespace tea
