/**
 * @file
 * Error taxonomy for recoverable failures.
 *
 * The logging layer's fatal()/panic() are for unrecoverable states; a
 * long-running campaign, however, must survive the failure of one run,
 * one shard, or one cache file. Recoverable conditions are therefore
 * values — an ErrorCode plus a message — carried either in an
 * Expected<T> (util/expected.hh) across constructor-factory and loader
 * boundaries, or in a TeaException across code that must throw.
 *
 * The taxonomy deliberately separates *infrastructure* failures (an
 * engine fault, a wall-clock deadline, a corrupt cache) from the
 * paper's modeled outcomes (Masked/SDC/Crash/Timeout): an injection
 * framework has to classify its own failures too, and must never count
 * them into the Application Vulnerability Metric.
 */

#ifndef TEA_UTIL_ERRORS_HH
#define TEA_UTIL_ERRORS_HH

#include <exception>
#include <string>

namespace tea {

enum class ErrorCode
{
    None,
    /** A campaign golden reference run did not halt cleanly. */
    GoldenRunFailed,
    /** An unexpected exception escaped a run or DTA shard. */
    EngineFault,
    /** The per-run wall-clock watchdog cut the run off. */
    RunDeadline,
    /** Cooperative shutdown (SIGINT/SIGTERM) stopped the work. */
    Cancelled,
    /** An on-disk cache/journal failed its integrity check. */
    CacheCorrupt,
    /** A journal's identity header does not match the campaign. */
    JournalMismatch,
    /** Malformed configuration (environment overrides, options). */
    BadConfig,
    /** Filesystem-level failure (open/write/rename). */
    IoError,
};

const char *errorCodeName(ErrorCode code);

/** A recoverable failure as a value: code + human-readable context. */
struct Error
{
    ErrorCode code = ErrorCode::None;
    std::string message;

    bool ok() const { return code == ErrorCode::None; }
    /** "EngineFault: <message>" for logs. */
    std::string describe() const;
};

/** printf-style Error construction. */
Error makeError(ErrorCode code, const char *fmt, ...)
    __attribute__((format(printf, 2, 3)));

/** Exception carrying an Error across code that must throw. */
class TeaException : public std::exception
{
  public:
    explicit TeaException(Error err);

    const char *what() const noexcept override { return what_.c_str(); }
    const Error &error() const { return err_; }

  private:
    Error err_;
    std::string what_;
};

} // namespace tea

#endif // TEA_UTIL_ERRORS_HH
