#include "util/errors.hh"

#include <cstdarg>

#include "util/logging.hh"

namespace tea {

const char *
errorCodeName(ErrorCode code)
{
    switch (code) {
      case ErrorCode::None: return "None";
      case ErrorCode::GoldenRunFailed: return "GoldenRunFailed";
      case ErrorCode::EngineFault: return "EngineFault";
      case ErrorCode::RunDeadline: return "RunDeadline";
      case ErrorCode::Cancelled: return "Cancelled";
      case ErrorCode::CacheCorrupt: return "CacheCorrupt";
      case ErrorCode::JournalMismatch: return "JournalMismatch";
      case ErrorCode::BadConfig: return "BadConfig";
      case ErrorCode::IoError: return "IoError";
    }
    return "?";
}

std::string
Error::describe() const
{
    std::string out = errorCodeName(code);
    if (!message.empty()) {
        out += ": ";
        out += message;
    }
    return out;
}

Error
makeError(ErrorCode code, const char *fmt, ...)
{
    va_list ap;
    va_start(ap, fmt);
    Error err{code, detail::vformat(fmt, ap)};
    va_end(ap);
    return err;
}

TeaException::TeaException(Error err)
    : err_(std::move(err)), what_(err_.describe())
{
}

} // namespace tea
