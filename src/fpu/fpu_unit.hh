/**
 * @file
 * Runtime model of one pipelined FPU unit under dynamic timing analysis.
 *
 * A unit owns its stage netlists, their delay annotations, and — per
 * voltage operating point — one DTA engine per stage plus the pipeline
 * history (the previous operation's stage inputs), which is what makes
 * timing errors data- and history-dependent. execute() runs one
 * operation through the pipeline twice in lockstep: a golden chain
 * (settled values, i.e. nominal-voltage behaviour) and a faulty chain
 * in which every stage's *captured* values — including any stale bits —
 * feed the next stage, exactly like the paper's two parallel gate-level
 * simulations.
 */

#ifndef TEA_FPU_FPU_UNIT_HH
#define TEA_FPU_FPU_UNIT_HH

#include <memory>
#include <string>
#include <vector>

#include "circuit/celllib.hh"
#include "circuit/compiled_dta.hh"
#include "circuit/dta.hh"
#include "circuit/netlist.hh"
#include "circuit/sta.hh"
#include "fpu/fpu_circuits.hh"
#include "fpu/fpu_types.hh"

namespace tea::fpu {

class FpuUnit
{
  public:
    FpuUnit(FpuUnitKind kind, const FpuConfig &cfg,
            const circuit::CellLibrary &lib);

    FpuUnitKind kind() const { return kind_; }
    const char *name() const { return fpuUnitName(kind_); }
    size_t numStages() const { return stages_.size(); }
    const circuit::Netlist &stage(size_t s) const { return *stages_[s]; }
    size_t totalCells() const;

    /** Per-stage static timing results (nominal voltage). */
    const std::vector<circuit::StaResult> &sta() const { return sta_; }
    /** Worst static path over all stages (incl. clk-to-Q and setup). */
    double worstStagePathPs() const;

    /**
     * Register a voltage operating point. delayScale multiplies every
     * cell delay (1.0 = nominal); exactEngine selects the event-driven
     * reference simulator instead of the fast levelized one.
     * @return the operating-point index used by execute().
     */
    size_t addOperatingPoint(double delayScale, bool exactEngine = false);

    size_t numOperatingPoints() const { return points_.size(); }

    /** Delay scale an operating point was registered with. */
    double pointScale(size_t point) const;
    /** Whether an operating point uses the exact event-driven engine. */
    bool pointExact(size_t point) const;

    /** Outcome of one operation at one operating point. */
    struct Exec
    {
        uint64_t golden;      ///< settled result (nominal behaviour)
        uint64_t faulty;      ///< result with timing errors applied
        uint64_t errorMask;   ///< golden ^ faulty over the result bits
        uint8_t goldenFlags;  ///< IEEE flags (FpuFlagBit bit order)
        uint8_t faultyFlags;  ///< flags as latched (may be corrupted)
        bool timingError;     ///< any output bit (result or flags) stale
        double maxArrivalPs;  ///< worst dynamic arrival across stages
    };

    /**
     * Execute one operation. stage0 must match the unit's input layout
     * (see buildUnitCircuits). The unit's pipeline history at this
     * operating point advances.
     *
     * Concurrency: netlists, annotations, and STA results are immutable
     * after construction, and execute() only mutates the addressed
     * Point (its DTA engines and pipeline history). Concurrent
     * execute() calls are therefore safe iff they target *distinct*
     * operating points — the contract the parallel campaign shards
     * rely on (one replica point per worker; see
     * FpuCore::workerPoints). Registering points concurrently with
     * execution is not safe.
     */
    Exec execute(size_t point, const std::vector<bool> &stage0,
                 double captureTimePs);

    /**
     * Execute up to 512 operations at once through a batched DTA
     * engine, selected by circuit::dtaBackend(): the 64-lane SWAR
     * interpreter (circuit::LaneDta, lanes <= 64), the compiled
     * program engine (circuit::CompiledDta, lanes <= 512), or a
     * scalar LevelizedDta loop. stage0Planes holds
     * circuit::CompiledDta::wordsFor(lanes) uint64_t words per
     * stage-0 input net, input-major (one word per net for lanes <=
     * 64 — the historical layout); lane l is operation l's input, and
     * out[l] receives its Exec. Operations behave exactly as `lanes`
     * sequential execute() calls: lane l's pipeline history is lane
     * l-1's stage inputs (lane 0 continues from the point's stored
     * history), and after the batch the history holds the last lane's
     * inputs — results are bit-identical to the scalar path at every
     * backend and lane width, except that Exec::maxArrivalPs is
     * computed over the capture-risky cone only (exact for every op
     * with a timing error, a lower bound for error-free ops; see
     * circuit::LaneBatch). Exact (event-driven) operating points and
     * single-lane batches fall back to scalar execute() calls
     * internally.
     *
     * Same concurrency contract as execute(): concurrent calls are
     * safe iff they target distinct operating points.
     */
    void executeBatch(size_t point,
                      const std::vector<uint64_t> &stage0Planes,
                      unsigned lanes, double captureTimePs, Exec *out);

    /** Forget the pipeline history at an operating point. */
    void reset(size_t point);

    /** Build the stage-0 input vector for an op on this unit. */
    std::vector<bool> packInputs(FpuOp op, uint64_t a, uint64_t b) const;

    unsigned resultBits() const { return resultBits_; }

  private:
    FpuUnitKind kind_;
    std::vector<std::unique_ptr<circuit::Netlist>> stages_;
    std::vector<circuit::DelayAnnotation> annots_;
    std::vector<circuit::StaResult> sta_;
    unsigned resultBits_;

    struct Point
    {
        double scale;
        bool exact;
        std::vector<std::unique_ptr<circuit::DtaEngine>> engines;
        /** Per-stage lane engines (levelized points only). */
        std::vector<std::unique_ptr<circuit::LaneDta>> laneEngines;
        /**
         * Per-stage compiled engines, created (and their netlists
         * lowered) on the first batch the compiled backend executes
         * at this point — points never routed there pay nothing.
         */
        std::vector<std::unique_ptr<circuit::CompiledDta>>
            compiledEngines;
        std::vector<std::vector<bool>> prevIn; ///< per stage
        bool primed = false;
    };
    std::vector<Point> points_;

    /** Lazily build + compile the point's CompiledDta engines. */
    void ensureCompiledEngines(Point &pt, double captureTimePs);
};

} // namespace tea::fpu

#endif // TEA_FPU_FPU_UNIT_HH
