#include "fpu/fpu_core.hh"

#include <algorithm>

#include "util/logging.hh"

namespace tea::fpu {

FpuCore::FpuCore(const FpuConfig &cfg, const circuit::CellLibrary &lib)
    : cfg_(cfg), lib_(lib)
{
    units_.reserve(kNumFpuUnits);
    for (unsigned u = 0; u < kNumFpuUnits; ++u)
        units_.push_back(std::make_unique<FpuUnit>(
            static_cast<FpuUnitKind>(u), cfg_, lib_));

    intSide_ = buildIntegerSideNetlists();
    for (const auto &nl : intSide_) {
        circuit::DelayAnnotation annot(*nl, lib_,
                                       cfg_.variationSeed ^ 0xabcdULL);
        intSta_.push_back(circuit::staAnalyze(*nl, annot));
    }

    for (const auto &u : units_)
        clockPs_ = std::max(clockPs_, u->worstStagePathPs());
    for (const auto &sta : intSta_)
        clockPs_ = std::max(clockPs_, sta.criticalPathPs());
    captureTimePs_ = clockPs_ - lib_.setupPs;
}

size_t
FpuCore::addOperatingPoint(double delayScale, bool exactEngine)
{
    size_t idx = 0;
    for (size_t u = 0; u < units_.size(); ++u) {
        size_t i = units_[u]->addOperatingPoint(delayScale, exactEngine);
        if (u == 0)
            idx = i;
        else
            panic_if(i != idx, "operating point index skew");
    }
    return idx;
}

std::vector<size_t>
FpuCore::workerPoints(size_t point, unsigned count)
{
    if (count == 0)
        count = 1;
    auto &pool = replicas_[point];
    double scale = units_.front()->pointScale(point);
    bool exact = units_.front()->pointExact(point);
    while (1 + pool.size() < count)
        pool.push_back(addOperatingPoint(scale, exact));
    std::vector<size_t> out;
    out.reserve(count);
    out.push_back(point);
    out.insert(out.end(), pool.begin(),
               pool.begin() + std::min<size_t>(count - 1, pool.size()));
    return out;
}

FpuCore::Exec
FpuCore::execute(size_t point, FpuOp op, uint64_t a, uint64_t b)
{
    FpuUnit &u = unit(unitFor(op));
    auto stage0 = u.packInputs(op, a, b);
    return u.execute(point, stage0, captureTimePs_);
}

void
FpuCore::executeBatch(size_t point, FpuOp op, const uint64_t *a,
                      const uint64_t *b, unsigned lanes, Exec *out)
{
    FpuUnit &u = unit(unitFor(op));
    // Transpose the operands into W-word planes per stage-0 input net
    // (input-major; one word per net up to 64 lanes, the historical
    // layout); packInputs stays the single source of truth for the
    // input layout itself.
    const unsigned W = circuit::CompiledDta::wordsFor(lanes);
    std::vector<uint64_t> planes(u.stage(0).numInputs() * size_t{W},
                                 0);
    for (unsigned l = 0; l < lanes; ++l) {
        auto in = u.packInputs(op, a[l], b[l]);
        for (size_t i = 0; i < in.size(); ++i)
            if (in[i])
                planes[i * W + l / 64] |= 1ULL << (l % 64);
    }
    u.executeBatch(point, planes, lanes, captureTimePs_, out);
}

void
FpuCore::reset(size_t point)
{
    for (auto &u : units_)
        u->reset(point);
}

std::vector<UnitPathInfo>
FpuCore::pathReport() const
{
    std::vector<UnitPathInfo> out;
    for (const auto &u : units_) {
        for (size_t s = 0; s < u->numStages(); ++s) {
            for (const auto &ep : u->sta()[s].endpoints()) {
                out.push_back(UnitPathInfo{
                    u->stage(s).name(), true, ep.pathDelayPs});
            }
        }
    }
    for (size_t i = 0; i < intSide_.size(); ++i)
        for (const auto &ep : intSta_[i].endpoints())
            out.push_back(
                UnitPathInfo{intSide_[i]->name(), false, ep.pathDelayPs});
    std::sort(out.begin(), out.end(),
              [](const UnitPathInfo &a, const UnitPathInfo &b) {
                  return a.pathDelayPs > b.pathDelayPs;
              });
    return out;
}

size_t
FpuCore::totalCells() const
{
    size_t n = 0;
    for (const auto &u : units_)
        n += u->totalCells();
    return n;
}

} // namespace tea::fpu
