/**
 * @file
 * The 12 floating-point instructions of the characterized FPU (6 double
 * precision + 6 single precision, matching Section IV.B of the paper)
 * and the hardware units implementing them.
 */

#ifndef TEA_FPU_FPU_TYPES_HH
#define TEA_FPU_FPU_TYPES_HH

#include <cstdint>
#include <string>

namespace tea::fpu {

/** The 12 modelled FP instructions. */
enum class FpuOp : uint8_t
{
    AddD,
    SubD,
    MulD,
    DivD,
    I2FD, ///< int64 -> double
    F2ID, ///< double -> int64 (RTZ)
    AddS,
    SubS,
    MulS,
    DivS,
    I2FS, ///< int32 -> float
    F2IS, ///< float -> int32 (RTZ)
};

constexpr unsigned kNumFpuOps = 12;

/** Physical pipeline units; Add and Sub share the add/sub datapath. */
enum class FpuUnitKind : uint8_t
{
    AddSubD,
    MulD,
    DivD,
    I2FD,
    F2ID,
    AddSubS,
    MulS,
    DivS,
    I2FS,
    F2IS,
};

constexpr unsigned kNumFpuUnits = 10;

const char *fpuOpName(FpuOp op);
const char *fpuUnitName(FpuUnitKind unit);

/** Which unit executes the op. */
FpuUnitKind unitFor(FpuOp op);

/** True for the 6 double-precision ops. */
bool isDoubleOp(FpuOp op);

/** Result width in bits (64 for DP and F2ID/I2FD results, 32 for SP). */
unsigned resultWidth(FpuOp op);

/** Parse an op name; fatal() on unknown names. */
FpuOp fpuOpFromName(const std::string &name);

/** IEEE exception flag bit positions in the FPU "flags" output bus. */
enum FpuFlagBit : unsigned
{
    kFlagInvalid = 0,
    kFlagDivByZero = 1,
    kFlagOverflow = 2,
    kFlagUnderflow = 3,
    kFlagInexact = 4,
};

} // namespace tea::fpu

#endif // TEA_FPU_FPU_TYPES_HH
