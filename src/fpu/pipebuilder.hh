/**
 * @file
 * Multi-stage pipeline construction helper.
 *
 * An FPU operation is a chain of combinational Netlists separated by
 * pipeline registers. PipeBuilder lets datapath code be written as one
 * sequential function: local Bus variables flow across nextStage()
 * calls, which register them (adding output buses to the finished stage
 * and matching input buses to the new one) and remap the variables in
 * place. The resulting stage netlists obey the contract the runtime
 * model relies on: stage s+1's primary inputs are exactly stage s's
 * flat outputs, in order.
 */

#ifndef TEA_FPU_PIPEBUILDER_HH
#define TEA_FPU_PIPEBUILDER_HH

#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "circuit/builders.hh"
#include "circuit/netlist.hh"

namespace tea::fpu {

using circuit::Builder;
using circuit::Bus;
using circuit::NetId;
using circuit::Netlist;

class PipeBuilder
{
  public:
    explicit PipeBuilder(std::string name);

    /** Builder over the stage currently under construction. */
    Builder &b() { return *builder_; }
    Netlist &stage() { return *stages_.back(); }

    /** Declare a primary-input bus (stage 0 only). */
    Bus input(const std::string &name, unsigned width);
    /** Declare a single-bit primary input (stage 0 only). */
    NetId inputBit(const std::string &name);

    /**
     * Close the current stage, registering every listed bus, and start
     * the next one. The Bus objects are remapped in place to the new
     * stage's input nets; any net not carried through is dead.
     */
    void nextStage(std::vector<std::pair<std::string, Bus *>> carry);

    /** Close the final stage, declaring its architectural outputs. */
    void finish(std::vector<std::pair<std::string, Bus>> outputs);

    /** Number of stages built so far. */
    size_t numStages() const { return stages_.size(); }

    /** Take ownership of the finished stage netlists. */
    std::vector<std::unique_ptr<Netlist>> take();

  private:
    std::string name_;
    std::vector<std::unique_ptr<Netlist>> stages_;
    std::unique_ptr<Builder> builder_;
    bool finished_ = false;
};

/** Wrap a single net as a one-bit bus (for carrying through stages). */
inline Bus
asBus(NetId n)
{
    return Bus{n};
}

} // namespace tea::fpu

#endif // TEA_FPU_PIPEBUILDER_HH
