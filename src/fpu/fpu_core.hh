/**
 * @file
 * The complete characterized FPU: all 10 units, the clock period they
 * imply (Eq. 1 of the paper), voltage operating points, and the path
 * reports behind Fig. 4.
 */

#ifndef TEA_FPU_FPU_CORE_HH
#define TEA_FPU_FPU_CORE_HH

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "circuit/celllib.hh"
#include "circuit/sta.hh"
#include "fpu/fpu_circuits.hh"
#include "fpu/fpu_types.hh"
#include "fpu/fpu_unit.hh"

namespace tea::fpu {

/** One capture endpoint tagged with its owning pipeline unit. */
struct UnitPathInfo
{
    std::string unit;   ///< e.g. "fpu-mul.d.s3" or "int-alu"
    bool isFpu;
    double pathDelayPs; ///< incl. clk-to-Q and setup
};

class FpuCore
{
  public:
    explicit FpuCore(const FpuConfig &cfg = FpuConfig{},
                     const circuit::CellLibrary &lib =
                         circuit::CellLibrary::nangate45Like());

    /** The minimum clock period: the worst static path in the core. */
    double clockPs() const { return clockPs_; }
    /** Capture time for DTA runs: clock minus register setup. */
    double captureTimePs() const { return captureTimePs_; }

    const FpuUnit &unit(FpuUnitKind k) const
    {
        return *units_[static_cast<size_t>(k)];
    }
    FpuUnit &unit(FpuUnitKind k)
    {
        return *units_[static_cast<size_t>(k)];
    }

    /**
     * Register a voltage operating point on every unit.
     * @return the operating-point index shared by all units.
     */
    size_t addOperatingPoint(double delayScale, bool exactEngine = false);

    /**
     * `count` operating points equivalent to `point` (same delay scale
     * and engine kind) for concurrent per-worker execution: element 0
     * is `point` itself, the rest are replicas sharing the immutable
     * netlists/annotations but owning their own DTA engines and
     * pipeline history. execute() on distinct points is thread-safe
     * (see FpuUnit::execute). Replicas are cached, so repeated
     * campaigns reuse them; callers must reset() a point before use
     * since its pipeline history is whatever the previous shard left.
     */
    std::vector<size_t> workerPoints(size_t point, unsigned count);

    using Exec = FpuUnit::Exec;

    /**
     * Run one FP instruction at an operating point. For conversions the
     * integer operand travels in `a`; `b` is ignored. SP operands are
     * the low 32 bits.
     */
    Exec execute(size_t point, FpuOp op, uint64_t a, uint64_t b = 0);

    /**
     * Run `lanes` instructions of one op type at once through the
     * unit's batched DTA engine (<= 64 lanes on the lane backend,
     * <= 512 on the compiled one — see circuit::dtaBackend); out[l]
     * receives lane l's Exec. Bit-identical to `lanes` sequential
     * execute() calls — including pipeline-history effects — at any
     * lane count and backend (see FpuUnit::executeBatch for the
     * fallback rules).
     */
    void executeBatch(size_t point, FpuOp op, const uint64_t *a,
                      const uint64_t *b, unsigned lanes, Exec *out);

    /** Clear pipeline history on every unit. */
    void reset(size_t point);

    /**
     * All capture endpoints of the FPU units plus representative
     * integer-side logic, sorted by descending path delay (Fig. 4).
     */
    std::vector<UnitPathInfo> pathReport() const;

    /** Total gate count across all FPU units (reporting). */
    size_t totalCells() const;

    const FpuConfig &config() const { return cfg_; }
    const circuit::CellLibrary &library() const { return lib_; }

  private:
    FpuConfig cfg_;
    circuit::CellLibrary lib_;
    std::vector<std::unique_ptr<FpuUnit>> units_;
    std::map<size_t, std::vector<size_t>> replicas_; ///< base point -> clones
    std::vector<std::unique_ptr<circuit::Netlist>> intSide_;
    std::vector<circuit::StaResult> intSta_;
    double clockPs_ = 0.0;
    double captureTimePs_ = 0.0;
};

} // namespace tea::fpu

#endif // TEA_FPU_FPU_CORE_HH
