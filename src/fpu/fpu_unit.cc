#include "fpu/fpu_unit.hh"

#include <algorithm>
#include <chrono>

#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "util/logging.hh"

namespace tea::fpu {

using circuit::DelayAnnotation;
using circuit::DtaResult;
using circuit::EventDrivenDta;
using circuit::LevelizedDta;
using circuit::Netlist;

FpuUnit::FpuUnit(FpuUnitKind kind, const FpuConfig &cfg,
                 const circuit::CellLibrary &lib)
    : kind_(kind), stages_(buildUnitCircuits(kind, cfg))
{
    annots_.reserve(stages_.size());
    sta_.reserve(stages_.size());
    for (size_t s = 0; s < stages_.size(); ++s) {
        uint64_t seed = cfg.variationSeed ^
                        (static_cast<uint64_t>(kind) << 32) ^ s;
        annots_.emplace_back(*stages_[s], lib, seed);
        sta_.push_back(circuit::staAnalyze(*stages_[s], annots_.back()));
    }
    // Result bus is the first output bus of the final stage.
    const auto &buses = stages_.back()->outputBuses();
    panic_if(buses.size() < 2 || buses[0].name != "result" ||
                 buses[1].name != "flags",
             "unit '%s': unexpected final-stage output layout", name());
    resultBits_ = static_cast<unsigned>(buses[0].nets.size());
}

size_t
FpuUnit::totalCells() const
{
    size_t n = 0;
    for (const auto &s : stages_)
        n += s->numCells();
    return n;
}

double
FpuUnit::worstStagePathPs() const
{
    double worst = 0.0;
    for (const auto &sta : sta_)
        worst = std::max(worst, sta.criticalPathPs());
    return worst;
}

size_t
FpuUnit::addOperatingPoint(double delayScale, bool exactEngine)
{
    Point pt;
    pt.scale = delayScale;
    pt.exact = exactEngine;
    for (size_t s = 0; s < stages_.size(); ++s) {
        if (exactEngine) {
            pt.engines.push_back(std::make_unique<EventDrivenDta>(
                *stages_[s], annots_[s], delayScale));
        } else {
            pt.engines.push_back(std::make_unique<LevelizedDta>(
                *stages_[s], annots_[s], delayScale));
            pt.laneEngines.push_back(std::make_unique<circuit::LaneDta>(
                *stages_[s], annots_[s], delayScale));
        }
    }
    pt.prevIn.resize(stages_.size());
    points_.push_back(std::move(pt));
    return points_.size() - 1;
}

double
FpuUnit::pointScale(size_t point) const
{
    panic_if(point >= points_.size(), "bad operating point %zu", point);
    return points_[point].scale;
}

bool
FpuUnit::pointExact(size_t point) const
{
    panic_if(point >= points_.size(), "bad operating point %zu", point);
    return points_[point].exact;
}

FpuUnit::Exec
FpuUnit::execute(size_t point, const std::vector<bool> &stage0,
                 double captureTimePs)
{
    panic_if(point >= points_.size(), "bad operating point %zu", point);
    Point &pt = points_[point];

    std::vector<bool> goldenIn = stage0;
    std::vector<bool> faultyIn = stage0;
    bool diverged = false;

    Exec out{};
    std::vector<bool> goldenOut, faultyOut;
    for (size_t s = 0; s < stages_.size(); ++s) {
        const std::vector<bool> &prev =
            pt.primed ? pt.prevIn[s] : faultyIn;
        DtaResult res = pt.engines[s]->run(prev, faultyIn, captureTimePs);
        pt.prevIn[s] = faultyIn;
        faultyOut = res.captured;
        if (!diverged) {
            goldenOut = res.settled;
        } else {
            auto vals = circuit::evaluate(*stages_[s], goldenIn);
            goldenOut = circuit::flattenOutputs(*stages_[s], vals);
        }
        if (faultyOut != goldenOut)
            diverged = true;
        out.maxArrivalPs = std::max(out.maxArrivalPs, res.maxArrivalPs);
        goldenIn = std::move(goldenOut);
        faultyIn = std::move(faultyOut);
    }
    pt.primed = true;

    // goldenIn/faultyIn now hold the final-stage flat outputs
    // (result bits first, then the 5 flag bits).
    auto extract = [&](const std::vector<bool> &flat, uint64_t &value,
                       uint8_t &flags) {
        value = 0;
        for (unsigned i = 0; i < resultBits_; ++i)
            if (flat[i])
                value |= 1ULL << i;
        flags = 0;
        for (unsigned i = 0; i < 5; ++i)
            if (flat[resultBits_ + i])
                flags |= 1u << i;
    };
    extract(goldenIn, out.golden, out.goldenFlags);
    extract(faultyIn, out.faulty, out.faultyFlags);
    out.errorMask = out.golden ^ out.faulty;
    out.timingError =
        out.errorMask != 0 || out.goldenFlags != out.faultyFlags;
    return out;
}

void
FpuUnit::ensureCompiledEngines(Point &pt, double captureTimePs)
{
    if (pt.compiledEngines.empty())
        for (size_t s = 0; s < stages_.size(); ++s)
            pt.compiledEngines.push_back(
                std::make_unique<circuit::CompiledDta>(
                    *stages_[s], annots_[s], pt.scale));
    auto t0 = std::chrono::steady_clock::now();
    bool compiled = false;
    for (auto &eng : pt.compiledEngines)
        compiled |= eng->prepare(captureTimePs);
    if (compiled) {
        static obs::Histogram hCompile =
            obs::Registry::global().histogram(
                obs::metric::kDtaCompileMs,
                {0.5, 1, 2, 5, 10, 25, 50, 100, 250, 500}, "",
                "wall-clock ms lowering netlists into DTA programs");
        hCompile.observe(
            std::chrono::duration<double, std::milli>(
                std::chrono::steady_clock::now() - t0)
                .count());
    }
}

void
FpuUnit::executeBatch(size_t point,
                      const std::vector<uint64_t> &stage0Planes,
                      unsigned lanes, double captureTimePs, Exec *out)
{
    panic_if(point >= points_.size(), "bad operating point %zu", point);
    Point &pt = points_[point];

    const circuit::DtaBackend backend = circuit::dtaBackend();
    static obs::Gauge gBackend = obs::Registry::global().gauge(
        obs::metric::kDtaBackend, "",
        "active batched-DTA backend (0=levelized 1=lane 2=compiled)");
    gBackend.set(static_cast<int64_t>(backend));

    const unsigned maxLanes = backend == circuit::DtaBackend::Lane
                                  ? circuit::LaneDta::kMaxLanes
                                  : circuit::CompiledDta::kMaxLanes;
    panic_if(lanes == 0 || lanes > maxLanes,
             "executeBatch: bad lane count %u for backend %s", lanes,
             circuit::dtaBackendName(backend));
    const unsigned W = circuit::CompiledDta::wordsFor(lanes);
    panic_if(stage0Planes.size() !=
                 stages_.front()->numInputs() * size_t{W},
             "executeBatch: bad stage-0 plane count");

    if (pt.exact || lanes == 1 ||
        backend == circuit::DtaBackend::Levelized) {
        // Scalar fallback: exact points have no batch engines, a
        // single lane gains nothing from plane packing, and the
        // levelized backend is by definition the scalar oracle loop.
        std::vector<bool> in(stages_.front()->numInputs());
        for (unsigned l = 0; l < lanes; ++l) {
            for (size_t i = 0; i < in.size(); ++i)
                in[i] = (stage0Planes[i * W + l / 64] >> (l % 64)) & 1;
            out[l] = execute(point, in, captureTimePs);
        }
        return;
    }

    std::vector<uint64_t> goldenIn = stage0Planes;
    std::vector<uint64_t> faultyIn = stage0Planes;
    std::array<double, circuit::CompiledDta::kMaxLanes> maxArr{};
    std::vector<uint64_t> prev;

    if (backend == circuit::DtaBackend::Compiled) {
        ensureCompiledEngines(pt, captureTimePs);
        for (size_t s = 0; s < stages_.size(); ++s) {
            circuit::CompiledDta &eng = *pt.compiledEngines[s];
            const size_t nIn = stages_[s]->numInputs();
            // Same funnel shift as the lane path below, but across W
            // words per input: lane l's previous stage input is lane
            // l-1's, with lane 0 continuing from the stored history
            // (or, unprimed, from its own input).
            prev.resize(nIn * W);
            for (size_t i = 0; i < nIn; ++i) {
                uint64_t carry = pt.primed
                                     ? (pt.prevIn[s][i] ? 1 : 0)
                                     : (faultyIn[i * W] & 1);
                for (unsigned w = 0; w < W; ++w) {
                    uint64_t v = faultyIn[i * W + w];
                    prev[i * W + w] = (v << 1) | carry;
                    carry = v >> 63;
                }
            }
            std::vector<bool> &hist = pt.prevIn[s];
            hist.assign(nIn, false);
            for (size_t i = 0; i < nIn; ++i)
                hist[i] = (faultyIn[i * W + (lanes - 1) / 64] >>
                           ((lanes - 1) % 64)) &
                          1;
            const circuit::WideBatch &res = eng.runBatch(
                prev, faultyIn, goldenIn, captureTimePs, lanes);
            for (unsigned l = 0; l < lanes; ++l)
                maxArr[l] = std::max(maxArr[l], res.maxArrivalPs[l]);
            faultyIn = res.captured;
            // The golden chain is the fused third plane: a pure
            // functional evaluation of the golden inputs, which is
            // what the scalar chain computes whether or not the
            // chains have diverged.
            goldenIn = res.golden;
        }
    } else {
        for (size_t s = 0; s < stages_.size(); ++s) {
            circuit::LaneDta &eng = *pt.laneEngines[s];
            // Lane l's previous stage input is lane l-1's: the
            // cross-lane dependency is a one-bit shift. Lane 0
            // continues from the stored history, or (unprimed) from
            // its own input — the same self-transition the scalar
            // path uses.
            prev.resize(faultyIn.size());
            for (size_t i = 0; i < faultyIn.size(); ++i) {
                uint64_t hist = pt.primed ? (pt.prevIn[s][i] ? 1 : 0)
                                          : (faultyIn[i] & 1);
                prev[i] = (faultyIn[i] << 1) | hist;
            }
            // After the batch the stored history is the last lane's
            // input, exactly what `lanes` scalar calls would have
            // left behind.
            std::vector<bool> &hist = pt.prevIn[s];
            hist.assign(faultyIn.size(), false);
            for (size_t i = 0; i < faultyIn.size(); ++i)
                hist[i] = (faultyIn[i] >> (lanes - 1)) & 1;
            const circuit::LaneBatch &res =
                eng.runBatch(prev, faultyIn, captureTimePs, lanes);
            for (unsigned l = 0; l < lanes; ++l)
                maxArr[l] = std::max(maxArr[l], res.maxArrivalPs[l]);
            faultyIn = res.captured;
            // The scalar golden chain equals the pure functional
            // evaluation of the golden inputs (settled == evaluate
            // when the chains agree, and it switches to evaluate once
            // they diverge), so one plane sweep covers all lanes.
            goldenIn = eng.evalBatch(goldenIn);
        }
    }
    pt.primed = true;

    for (unsigned l = 0; l < lanes; ++l) {
        Exec &e = out[l];
        e = Exec{};
        const unsigned w = l / 64, b = l % 64;
        for (unsigned i = 0; i < resultBits_; ++i) {
            if ((goldenIn[i * W + w] >> b) & 1)
                e.golden |= 1ULL << i;
            if ((faultyIn[i * W + w] >> b) & 1)
                e.faulty |= 1ULL << i;
        }
        for (unsigned i = 0; i < 5; ++i) {
            if ((goldenIn[(resultBits_ + i) * W + w] >> b) & 1)
                e.goldenFlags |= 1u << i;
            if ((faultyIn[(resultBits_ + i) * W + w] >> b) & 1)
                e.faultyFlags |= 1u << i;
        }
        e.errorMask = e.golden ^ e.faulty;
        e.timingError =
            e.errorMask != 0 || e.goldenFlags != e.faultyFlags;
        e.maxArrivalPs = maxArr[l];
    }
}

void
FpuUnit::reset(size_t point)
{
    panic_if(point >= points_.size(), "bad operating point %zu", point);
    Point &pt = points_[point];
    pt.primed = false;
    for (auto &p : pt.prevIn)
        p.clear();
}

std::vector<bool>
FpuUnit::packInputs(FpuOp op, uint64_t a, uint64_t b) const
{
    panic_if(unitFor(op) != kind_, "op %s does not run on unit %s",
             fpuOpName(op), name());
    const Netlist &s0 = *stages_.front();
    std::vector<bool> in(s0.numInputs());
    auto put = [&](size_t base, uint64_t v, unsigned width) {
        for (unsigned i = 0; i < width; ++i)
            in[base + i] = (v >> i) & 1;
    };
    unsigned w = isDoubleOp(op) ? 64 : 32;
    switch (kind_) {
      case FpuUnitKind::AddSubD:
      case FpuUnitKind::AddSubS:
        put(0, a, w);
        put(w, b, w);
        in[2 * w] = (op == FpuOp::SubD || op == FpuOp::SubS);
        break;
      case FpuUnitKind::MulD:
      case FpuUnitKind::MulS:
      case FpuUnitKind::DivD:
      case FpuUnitKind::DivS:
        put(0, a, w);
        put(w, b, w);
        break;
      case FpuUnitKind::I2FD:
      case FpuUnitKind::I2FS:
      case FpuUnitKind::F2ID:
      case FpuUnitKind::F2IS:
        put(0, a, w);
        break;
    }
    return in;
}

} // namespace tea::fpu
