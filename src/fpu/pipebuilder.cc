#include "fpu/pipebuilder.hh"

#include "util/logging.hh"

namespace tea::fpu {

PipeBuilder::PipeBuilder(std::string name) : name_(std::move(name))
{
    stages_.push_back(
        std::make_unique<Netlist>(name_ + ".s0"));
    builder_ = std::make_unique<Builder>(*stages_.back());
}

Bus
PipeBuilder::input(const std::string &name, unsigned width)
{
    panic_if(stages_.size() != 1,
             "primary inputs only allowed in stage 0 of '%s'",
             name_.c_str());
    return stages_.back()->addInputBus(name, width);
}

NetId
PipeBuilder::inputBit(const std::string &name)
{
    panic_if(stages_.size() != 1,
             "primary inputs only allowed in stage 0 of '%s'",
             name_.c_str());
    return stages_.back()->addInput(name);
}

void
PipeBuilder::nextStage(std::vector<std::pair<std::string, Bus *>> carry)
{
    panic_if(finished_, "pipeline '%s' already finished", name_.c_str());
    Netlist &cur = *stages_.back();
    for (auto &[name, bus] : carry)
        cur.addOutputBus(name, *bus);

    auto next = std::make_unique<Netlist>(
        name_ + ".s" + std::to_string(stages_.size()));
    for (auto &[name, bus] : carry) {
        Bus mapped = next->addInputBus(name,
                                       static_cast<unsigned>(bus->size()));
        *bus = mapped;
    }
    stages_.push_back(std::move(next));
    builder_ = std::make_unique<Builder>(*stages_.back());
}

void
PipeBuilder::finish(std::vector<std::pair<std::string, Bus>> outputs)
{
    panic_if(finished_, "pipeline '%s' already finished", name_.c_str());
    Netlist &cur = *stages_.back();
    for (auto &[name, bus] : outputs)
        cur.addOutputBus(name, bus);
    finished_ = true;
}

std::vector<std::unique_ptr<Netlist>>
PipeBuilder::take()
{
    panic_if(!finished_, "pipeline '%s' not finished", name_.c_str());
    builder_.reset();
    return std::move(stages_);
}

} // namespace tea::fpu
