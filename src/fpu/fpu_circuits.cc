#include "fpu/fpu_circuits.hh"

#include <algorithm>

#include "fpu/pipebuilder.hh"
#include "util/logging.hh"

namespace tea::fpu {

using circuit::Builder;
using circuit::Bus;
using circuit::CellKind;
using circuit::NetId;
using circuit::Netlist;

namespace {

/** Shift-amount bus width for a datapath of the given bit count. */
unsigned
shiftWidth(size_t buswidth)
{
    unsigned w = 0;
    while ((size_t(1) << w) < buswidth)
        ++w;
    return w;
}

/** Unpacked operand fields (all FTZ-normalized). */
struct Unpacked
{
    NetId sign;
    Bus exp;    ///< raw biased exponent (eb bits)
    Bus sig;    ///< mb+1 bits incl. implicit 1; all-zero for zero input
    Bus manRaw; ///< raw mantissa field
    NetId isNaN, isInf, isZero;
};

Unpacked
unpackOperand(Builder &b, const Bus &x, const FpFmt &f)
{
    Unpacked u;
    u.sign = x[f.width() - 1];
    u.exp = Bus(x.begin() + f.mb, x.begin() + f.mb + f.eb);
    u.manRaw = Bus(x.begin(), x.begin() + f.mb);
    NetId expZero = b.isZeroBus(u.exp);
    NetId expMax = b.andTree(u.exp);
    NetId manOr = b.orTree(u.manRaw);
    u.isNaN = b.and2(expMax, manOr);
    u.isInf = b.and2(expMax, b.inv(manOr));
    u.isZero = expZero; // FTZ: subnormals count as zero
    NetId notZero = b.inv(expZero);
    u.sig.reserve(f.mb + 1);
    for (unsigned i = 0; i < f.mb; ++i)
        u.sig.push_back(b.and2(u.manRaw[i], notZero));
    u.sig.push_back(notZero); // implicit leading one
    return u;
}

/** Gate-level equivalent of softfloat's roundPack (RNE + FTZ). */
struct RoundOut
{
    Bus packed; ///< width() bits; valid unless a special overrides it
    NetId overflow, underflow, inexact;
};

RoundOut
roundPackGate(Builder &b, NetId sign, const Bus &expExt, const Bus &sig,
              const FpFmt &f)
{
    panic_if(expExt.size() != f.eb + 2, "roundPackGate expExt width");
    panic_if(sig.size() != f.mb + 4, "roundPackGate sig width");

    NetId g = sig[2], r = sig[1], s = sig[0];
    NetId lsb = sig[3];
    NetId roundUp = b.and2(g, b.or2(b.or2(r, s), lsb));

    Bus man(sig.begin() + 3, sig.end()); // mb+1 incl. implicit
    Bus manExt = b.zeroExtend(man, f.mb + 2);
    Bus inc = b.fastIncrementer(manExt, roundUp);
    NetId carry = inc[f.mb + 1];
    // After a carry the fraction field is all zeros automatically.
    Bus mantField(inc.begin(), inc.begin() + f.mb);

    Bus expFin = b.incrementer(expExt, carry);
    NetId signBit = expFin[f.eb + 1];
    Bus expLow(expFin.begin(), expFin.begin() + f.eb + 1);
    NetId geMax = b.geUnsigned(
        expLow, b.constBus(f.expMax(), f.eb + 1));
    NetId overflow = b.and2(b.inv(signBit), geMax);
    NetId underflow = b.or2(signBit, b.isZeroBus(expFin));
    NetId grsAny = b.or2(b.or2(g, r), s);
    NetId inexact = b.or2(grsAny, b.or2(overflow, underflow));

    NetId kill = b.or2(overflow, underflow);
    Bus packed;
    packed.reserve(f.width());
    for (unsigned i = 0; i < f.mb; ++i)
        packed.push_back(b.and2(mantField[i], b.inv(kill)));
    for (unsigned i = 0; i < f.eb; ++i) {
        // overflow -> all ones, underflow -> all zeros, else expFin.
        NetId normOrUnd = b.and2(expFin[i], b.inv(underflow));
        packed.push_back(b.mux2(overflow, normOrUnd, b.c1()));
    }
    packed.push_back(sign);
    return {std::move(packed), overflow, underflow, inexact};
}

/** Constant W-bit packed patterns. */
Bus
qnanBus(Builder &b, const FpFmt &f)
{
    Bus out;
    out.reserve(f.width());
    for (unsigned i = 0; i < f.mb - 1; ++i)
        out.push_back(b.c0());
    out.push_back(b.c1()); // mantissa MSB
    for (unsigned i = 0; i < f.eb; ++i)
        out.push_back(b.c1());
    out.push_back(b.c0());
    return out;
}

Bus
infBus(Builder &b, const FpFmt &f, NetId sign)
{
    Bus out;
    out.reserve(f.width());
    for (unsigned i = 0; i < f.mb; ++i)
        out.push_back(b.c0());
    for (unsigned i = 0; i < f.eb; ++i)
        out.push_back(b.c1());
    out.push_back(sign);
    return out;
}

Bus
zeroBus(Builder &b, const FpFmt &f, NetId sign)
{
    Bus out(f.width() - 1, b.c0());
    out.push_back(sign);
    return out;
}

/** expExt helper: zero-extend a raw exponent to eb+2 bits. */
Bus
extExp(Builder &b, const Bus &e, const FpFmt &f)
{
    return b.zeroExtend(e, f.eb + 2);
}

// =====================================================================
// Add / Sub
// =====================================================================

std::vector<std::unique_ptr<Netlist>>
buildAddSub(const FpFmt &f, const FpuConfig &cfg)
{
    const unsigned W = f.width(), MB = f.mb, EB = f.eb;
    PipeBuilder pb(std::string("fpu-addsub.") + (MB == 52 ? "d" : "s"));

    Bus inA = pb.input("a", W);
    Bus inB = pb.input("b", W);
    NetId isSubIn = pb.inputBit("is_sub");

    // ---- Stage 1: unpack, classify, effective sign ----
    Bus sa, sb, ea, eb, siga, sigb, spec;
    {
        Builder &b = pb.b();
        Unpacked ua = unpackOperand(b, inA, f);
        Unpacked ub = unpackOperand(b, inB, f);
        NetId effSb = b.xor2(ub.sign, isSubIn);
        NetId invalid = b.and2(b.and2(ua.isInf, ub.isInf),
                               b.xor2(ua.sign, effSb));
        NetId nanAny = b.or2(b.or2(ua.isNaN, ub.isNaN), invalid);
        NetId infAny = b.or2(ua.isInf, ub.isInf);
        NetId infSign = b.mux2(ua.isInf, effSb, ua.sign);
        NetId bothZero = b.and2(ua.isZero, ub.isZero);
        NetId zeroSign = b.and2(bothZero, b.and2(ua.sign, effSb));
        sa = asBus(ua.sign);
        sb = asBus(effSb);
        ea = ua.exp;
        eb = ub.exp;
        siga = ua.sig;
        sigb = ub.sig;
        spec = {nanAny, infAny, infSign, zeroSign, invalid};
    }
    pb.nextStage({{"sa", &sa},
                  {"sb", &sb},
                  {"ea", &ea},
                  {"eb", &eb},
                  {"siga", &siga},
                  {"sigb", &sigb},
                  {"spec", &spec}});

    // ---- Stage 2: magnitude compare, swap, alignment amount ----
    const unsigned SW = shiftWidth(MB + 5);
    Bus signBig, bigExp, bigSig, smallSig, amt, effSub;
    {
        Builder &b = pb.b();
        NetId expLt = b.lessUnsigned(ea, eb);
        NetId expEq = b.equalBus(ea, eb);
        NetId manLt = b.lessUnsigned(siga, sigb);
        NetId swap = b.or2(expLt, b.and2(expEq, manLt));
        bigExp = b.mux2Bus(swap, ea, eb);
        Bus smallExp = b.mux2Bus(swap, eb, ea);
        bigSig = b.mux2Bus(swap, siga, sigb);
        smallSig = b.mux2Bus(swap, sigb, siga);
        NetId sBig = b.mux2(swap, sa[0], sb[0]);
        NetId sSmall = b.mux2(swap, sb[0], sa[0]);
        Bus d = b.subtract(bigExp, smallExp, false).sum;
        // Saturate the shift amount into SW bits.
        Bus dHigh(d.begin() + SW, d.end());
        NetId sat = b.orTree(dHigh);
        amt.resize(SW);
        for (unsigned i = 0; i < SW; ++i)
            amt[i] = b.or2(d[i], sat);
        signBig = asBus(sBig);
        effSub = asBus(b.xor2(sBig, sSmall));
    }
    pb.nextStage({{"sign_big", &signBig},
                  {"big_exp", &bigExp},
                  {"big_sig", &bigSig},
                  {"small_sig", &smallSig},
                  {"amt", &amt},
                  {"eff_sub", &effSub},
                  {"spec", &spec}});

    // ---- Stage 3: align, complement, and the mantissa adder.  This is
    // the deep data-dependent stage: shifter -> complement -> carry
    // chain, excited in full only by long carry/borrow propagation. ----
    Bus sum;
    {
        Builder &b = pb.b();
        Bus big3 = b.shiftLeftConst(bigSig, 3, MB + 4);
        Bus small3 = b.shiftLeftConst(smallSig, 3, MB + 4);
        auto sh = b.shiftRightSticky(small3, amt);
        Bus aligned = sh.out;
        aligned[0] = b.or2(aligned[0], sh.sticky);
        Bus addend(MB + 4);
        for (unsigned i = 0; i < MB + 4; ++i)
            addend[i] = b.xor2(aligned[i], effSub[0]);
        Bus bigExt = b.zeroExtend(big3, MB + 5);
        Bus addExt = addend;
        addExt.push_back(effSub[0]); // ~x sign-extends with 1s
        if (cfg.rippleMantissaAdd) {
            unsigned low = (MB == 52) ? cfg.addsubSelectLowBitsD
                                      : cfg.addsubSelectLowBitsS;
            sum = b.carrySelectAdd(bigExt, addExt, effSub[0], low).sum;
        } else {
            sum = b.koggeStoneAdd(bigExt, addExt, effSub[0]).sum;
        }
    }
    pb.nextStage({{"sign_big", &signBig},
                  {"big_exp", &bigExp},
                  {"sum", &sum},
                  {"eff_sub", &effSub},
                  {"spec", &spec}});

    // ---- Stage 5: normalize ----
    Bus sig, expExt, resZero;
    {
        Builder &b = pb.b();
        NetId carryBit = sum[MB + 4];
        Bus sumLow(sum.begin(), sum.begin() + MB + 4);
        // Addition path: possible 1-bit right shift with sticky.
        Bus addSig(MB + 4);
        for (unsigned i = 0; i < MB + 4; ++i)
            addSig[i] = (i + 1 < MB + 5) ? sum[i + 1] : b.c0();
        addSig[0] = b.or2(sum[1], sum[0]);
        Bus addSel = b.mux2Bus(carryBit, sumLow, addSig);
        // Subtraction path: renormalize left by the leading-zero count.
        Bus lz = b.leadingZeroCount(sumLow);
        Bus lzSh(lz.begin(), lz.begin() + shiftWidth(MB + 5));
        Bus norm = b.shiftLeftLogical(sumLow, lzSh);
        sig = b.mux2Bus(effSub[0], addSel, norm);
        resZero = asBus(b.isZeroBus(sum));
        // Exponent: +carry on the add path, -lz on the subtract path.
        Bus expZ = extExp(b, bigExp, f);
        NetId incBy = b.and2(carryBit, b.inv(effSub[0]));
        Bus expInc = b.incrementer(expZ, incBy);
        Bus lzMask =
            b.maskBus(b.zeroExtend(lz, EB + 2), effSub[0]);
        expExt = b.subtract(expInc, lzMask, false).sum;
    }
    pb.nextStage({{"sign_big", &signBig},
                  {"exp_ext", &expExt},
                  {"sig", &sig},
                  {"res_zero", &resZero},
                  {"spec", &spec}});

    // ---- Stage 6: round, pack, special-case selection ----
    {
        Builder &b = pb.b();
        RoundOut rp = roundPackGate(b, signBig[0], expExt, sig, f);
        NetId nanAny = spec[0], infAny = spec[1], infSign = spec[2],
              zeroSign = spec[3], invalid = spec[4];
        Bus res = rp.packed;
        res = b.mux2Bus(resZero[0], res, zeroBus(b, f, zeroSign));
        res = b.mux2Bus(infAny, res, infBus(b, f, infSign));
        res = b.mux2Bus(nanAny, res, qnanBus(b, f));
        NetId special =
            b.or2(nanAny, b.or2(infAny, resZero[0]));
        NetId valid = b.inv(special);
        Bus flags = {invalid, b.c0(), b.and2(rp.overflow, valid),
                     b.and2(rp.underflow, valid),
                     b.and2(rp.inexact, valid)};
        pb.finish({{"result", res}, {"flags", flags}});
    }
    return pb.take();
}

// =====================================================================
// Mul
// =====================================================================

std::vector<std::unique_ptr<Netlist>>
buildMul(const FpFmt &f, const FpuConfig &cfg)
{
    const unsigned W = f.width(), MB = f.mb, EB = f.eb;
    const unsigned rowsTotal = MB + 1;
    const unsigned rowsPerStage =
        (MB == 52) ? cfg.mulRowsPerStageD : cfg.mulRowsPerStageS;
    const unsigned prodW = 2 * MB + 2;
    PipeBuilder pb(std::string("fpu-mul.") + (MB == 52 ? "d" : "s"));

    Bus inA = pb.input("a", W);
    Bus inB = pb.input("b", W);

    // ---- Stage 1: unpack, classify, exponent sum ----
    Bus resSign, expExt, siga, sigb, spec;
    {
        Builder &b = pb.b();
        Unpacked ua = unpackOperand(b, inA, f);
        Unpacked ub = unpackOperand(b, inB, f);
        resSign = asBus(b.xor2(ua.sign, ub.sign));
        NetId invalid = b.or2(b.and2(ua.isInf, ub.isZero),
                              b.and2(ua.isZero, ub.isInf));
        NetId nanAny = b.or2(b.or2(ua.isNaN, ub.isNaN), invalid);
        NetId infOut = b.or2(ua.isInf, ub.isInf);
        NetId zeroOut = b.or2(ua.isZero, ub.isZero);
        Bus sumExp =
            b.koggeStoneAdd(extExp(b, ua.exp, f), extExp(b, ub.exp, f))
                .sum;
        expExt =
            b.subtract(sumExp, b.constBus(f.bias(), EB + 2), false).sum;
        siga = ua.sig;
        sigb = ub.sig;
        spec = {nanAny, infOut, zeroOut, invalid};
    }
    pb.nextStage({{"sign", &resSign},
                  {"exp_ext", &expExt},
                  {"siga", &siga},
                  {"sigb", &sigb},
                  {"spec", &spec}});

    // ---- Array stages: carry-save accumulation of partial products ----
    Builder::CsaState st = pb.b().csaInit(prodW);
    unsigned row = 0;
    while (row < rowsTotal) {
        Builder &b = pb.b();
        unsigned end = std::min(rowsTotal, row + rowsPerStage);
        for (; row < end; ++row)
            st = b.csaAddRow(st, siga, sigb[row], row);
        if (row < rowsTotal) {
            // Only the unconsumed multiplier bits travel on.
            Bus sigbRest(sigb.begin() + row, sigb.end());
            pb.nextStage({{"sign", &resSign},
                          {"exp_ext", &expExt},
                          {"siga", &siga},
                          {"sigb_rest", &sigbRest},
                          {"csa_sum", &st.sum},
                          {"csa_carry", &st.carry},
                          {"spec", &spec}});
            // Remap the multiplier so sigb[row] is the next fresh bit.
            sigb.assign(row, circuit::invalidNet);
            sigb.insert(sigb.end(), sigbRest.begin(), sigbRest.end());
        }
    }
    pb.nextStage({{"sign", &resSign},
                  {"exp_ext", &expExt},
                  {"csa_sum", &st.sum},
                  {"csa_carry", &st.carry},
                  {"spec", &spec}});

    // ---- Resolve stage: carry-save to binary ----
    Bus prod;
    {
        Builder &b = pb.b();
        prod = b.csaResolve({st.sum, st.carry}, true);
    }
    pb.nextStage({{"sign", &resSign},
                  {"exp_ext", &expExt},
                  {"prod", &prod},
                  {"spec", &spec}});

    // ---- Final stage: normalize, round, pack, specials ----
    {
        Builder &b = pb.b();
        NetId high = prod[2 * MB + 1];
        Bus sigLo(prod.begin() + (MB - 3), prod.begin() + (2 * MB + 1));
        Bus sigHi(prod.begin() + (MB - 2), prod.begin() + (2 * MB + 2));
        Bus sig = b.mux2Bus(high, sigLo, sigHi);
        Bus lowBits(prod.begin(), prod.begin() + (MB - 3));
        NetId sticky = b.or2(b.orTree(lowBits),
                             b.and2(high, prod[MB - 3]));
        sig[0] = b.or2(sig[0], sticky);
        Bus expFin = b.incrementer(expExt, high);
        RoundOut rp = roundPackGate(b, resSign[0], expFin, sig, f);
        NetId nanAny = spec[0], infOut = spec[1], zeroOut = spec[2],
              invalid = spec[3];
        Bus res = rp.packed;
        res = b.mux2Bus(zeroOut, res, zeroBus(b, f, resSign[0]));
        res = b.mux2Bus(infOut, res, infBus(b, f, resSign[0]));
        res = b.mux2Bus(nanAny, res, qnanBus(b, f));
        NetId valid =
            b.inv(b.or2(nanAny, b.or2(infOut, zeroOut)));
        Bus flags = {invalid, b.c0(), b.and2(rp.overflow, valid),
                     b.and2(rp.underflow, valid),
                     b.and2(rp.inexact, valid)};
        pb.finish({{"result", res}, {"flags", flags}});
    }
    return pb.take();
}

// =====================================================================
// Div
// =====================================================================

std::vector<std::unique_ptr<Netlist>>
buildDiv(const FpFmt &f, const FpuConfig &cfg)
{
    const unsigned W = f.width(), MB = f.mb, EB = f.eb;
    const unsigned qBits = MB + 3;
    const unsigned rowsPerStage =
        (MB == 52) ? cfg.divRowsPerStageD : cfg.divRowsPerStageS;
    PipeBuilder pb(std::string("fpu-div.") + (MB == 52 ? "d" : "s"));

    Bus inA = pb.input("a", W);
    Bus inB = pb.input("b", W);

    // ---- Stage 1: unpack, classify, pre-shift, exponent ----
    Bus resSign, expExt, rem, den, spec, qAcc;
    {
        Builder &b = pb.b();
        Unpacked ua = unpackOperand(b, inA, f);
        Unpacked ub = unpackOperand(b, inB, f);
        resSign = asBus(b.xor2(ua.sign, ub.sign));
        NetId invalid = b.or2(b.and2(ua.isInf, ub.isInf),
                              b.and2(ua.isZero, ub.isZero));
        NetId nanAny = b.or2(b.or2(ua.isNaN, ub.isNaN), invalid);
        NetId dbz = b.and2(
            ub.isZero,
            b.inv(b.or2(ua.isZero, b.or2(ua.isNaN, ua.isInf))));
        NetId infOut = b.or2(ua.isInf, dbz);
        NetId zeroOut = b.or2(ub.isInf, ua.isZero);
        NetId aLtB = b.lessUnsigned(ua.sig, ub.sig);
        Bus saExt = b.zeroExtend(ua.sig, MB + 2);
        Bus saShl = b.shiftLeftConst(ua.sig, 1, MB + 2);
        Bus sa = b.mux2Bus(aLtB, saExt, saShl);
        Bus diff = b.subtract(extExp(b, ua.exp, f),
                              extExp(b, ub.exp, f), false)
                       .sum;
        Bus withBias =
            b.koggeStoneAdd(diff, b.constBus(f.bias(), EB + 2)).sum;
        expExt = b.subtract(withBias,
                            b.zeroExtend(asBus(aLtB), EB + 2), false)
                     .sum;
        rem = b.zeroExtend(sa, MB + 3);
        den = b.zeroExtend(ub.sig, MB + 2);
        spec = {nanAny, infOut, zeroOut, invalid, dbz};
        qAcc = {};
    }

    // ---- Row stages ----
    unsigned done = 0;
    while (done < qBits) {
        pb.nextStage({{"sign", &resSign},
                      {"exp_ext", &expExt},
                      {"rem", &rem},
                      {"den", &den},
                      {"q_acc", &qAcc},
                      {"spec", &spec}});
        Builder &b = pb.b();
        unsigned end = std::min(qBits, done + rowsPerStage);
        for (; done < end; ++done) {
            auto r = b.divRow(rem, den);
            qAcc.push_back(r.qBit);
            rem = r.nextRem;
        }
    }

    pb.nextStage({{"sign", &resSign},
                  {"exp_ext", &expExt},
                  {"rem", &rem},
                  {"q_acc", &qAcc},
                  {"spec", &spec}});

    // ---- Final stage: assemble significand, round, pack, specials ----
    {
        Builder &b = pb.b();
        // qAcc[i] is quotient bit (qBits-1-i); the remainder OR is the
        // sticky (shifting between rows only moves provably-zero MSBs).
        NetId sticky = b.orTree(rem);
        Bus sig(MB + 4);
        sig[0] = sticky;
        for (unsigned i = 0; i < qBits; ++i)
            sig[1 + i] = qAcc[qBits - 1 - i];
        RoundOut rp = roundPackGate(b, resSign[0], expExt, sig, f);
        NetId nanAny = spec[0], infOut = spec[1], zeroOut = spec[2],
              invalid = spec[3], dbz = spec[4];
        Bus res = rp.packed;
        res = b.mux2Bus(zeroOut, res, zeroBus(b, f, resSign[0]));
        res = b.mux2Bus(infOut, res, infBus(b, f, resSign[0]));
        res = b.mux2Bus(nanAny, res, qnanBus(b, f));
        NetId valid =
            b.inv(b.or2(nanAny, b.or2(infOut, zeroOut)));
        Bus flags = {invalid, b.and2(dbz, b.inv(nanAny)),
                     b.and2(rp.overflow, valid),
                     b.and2(rp.underflow, valid),
                     b.and2(rp.inexact, valid)};
        pb.finish({{"result", res}, {"flags", flags}});
    }
    return pb.take();
}

// =====================================================================
// I2F
// =====================================================================

std::vector<std::unique_ptr<Netlist>>
buildI2F(const FpFmt &f, unsigned intBits)
{
    const unsigned MB = f.mb, EB = f.eb, N = intBits;
    PipeBuilder pb(std::string("fpu-i2f.") + (MB == 52 ? "d" : "s"));

    Bus v = pb.input("v", N);

    // ---- Stage 1: sign/magnitude ----
    Bus sign, mag, isZero;
    {
        Builder &b = pb.b();
        NetId sgn = v[N - 1];
        Bus neg = b.subtract(b.constBus(0, N), v, true).sum;
        mag = b.mux2Bus(sgn, v, neg);
        sign = asBus(sgn);
        isZero = asBus(b.isZeroBus(v));
    }
    pb.nextStage(
        {{"sign", &sign}, {"mag", &mag}, {"is_zero", &isZero}});

    // ---- Stage 2: normalize ----
    Bus shifted, expExt;
    {
        Builder &b = pb.b();
        Bus lz = b.leadingZeroCount(mag);
        Bus lzSh(lz.begin(), lz.begin() + shiftWidth(N));
        shifted = b.shiftLeftLogical(mag, lzSh);
        expExt = b.subtract(b.constBus(N - 1 + f.bias(), EB + 2),
                            b.zeroExtend(lz, EB + 2), false)
                     .sum;
    }
    pb.nextStage({{"sign", &sign},
                  {"shifted", &shifted},
                  {"exp_ext", &expExt},
                  {"is_zero", &isZero}});

    // ---- Stage 3: round and pack ----
    {
        Builder &b = pb.b();
        const unsigned cut = N - 1 - (MB + 3);
        Bus sig(shifted.begin() + cut, shifted.end());
        Bus lowBits(shifted.begin(), shifted.begin() + cut);
        NetId sticky = b.orTree(lowBits);
        sig[0] = b.or2(sig[0], sticky);
        RoundOut rp = roundPackGate(b, sign[0], expExt, sig, f);
        Bus res = b.mux2Bus(isZero[0], rp.packed,
                            zeroBus(b, f, b.c0()));
        Bus flags = {b.c0(), b.c0(), b.c0(), b.c0(),
                     b.and2(rp.inexact, b.inv(isZero[0]))};
        pb.finish({{"result", res}, {"flags", flags}});
    }
    return pb.take();
}

// =====================================================================
// F2I (round toward zero, saturating)
// =====================================================================

std::vector<std::unique_ptr<Netlist>>
buildF2I(const FpFmt &f, unsigned intBits)
{
    const unsigned W = f.width(), MB = f.mb, EB = f.eb, N = intBits;
    PipeBuilder pb(std::string("fpu-f2i.") + (MB == 52 ? "d" : "s"));

    Bus inA = pb.input("a", W);

    // ---- Stage 1: unpack, signed exponent ----
    Bus sign, eS, sig, flagsIn;
    {
        Builder &b = pb.b();
        Unpacked ua = unpackOperand(b, inA, f);
        sign = asBus(ua.sign);
        eS = b.subtract(extExp(b, ua.exp, f),
                        b.constBus(f.bias(), EB + 2), false)
                 .sum;
        sig = ua.sig;
        NetId manZero = b.isZeroBus(ua.manRaw);
        flagsIn = {ua.isNaN, ua.isInf, ua.isZero, manZero};
    }
    pb.nextStage({{"sign", &sign},
                  {"e_s", &eS},
                  {"sig", &sig},
                  {"flags_in", &flagsIn}});

    // ---- Stage 2: shift into the integer field ----
    Bus mag, st2;
    {
        Builder &b = pb.b();
        NetId negE = eS[EB + 1];
        NetId isNaN = flagsIn[0], isInf = flagsIn[1],
              isZero = flagsIn[2], manZero = flagsIn[3];
        Bus eLow(eS.begin(), eS.begin() + EB + 1);
        NetId eEqTop =
            b.equalBus(eS, b.constBus(N - 1, EB + 2));
        NetId eGeTop = b.and2(
            b.inv(negE),
            b.geUnsigned(eLow, b.constBus(N - 1, EB + 1)));
        NetId minCase =
            b.and2(sign[0], b.and2(eEqTop, manZero));
        NetId ovf = b.and2(eGeTop, b.inv(minCase));
        // Shift left by e within a (MB+N)-bit field; garbage amounts
        // only occur in overridden (overflow) cases.
        const unsigned SW = shiftWidth(N);
        Bus amt(SW);
        for (unsigned i = 0; i < SW; ++i)
            amt[i] = b.and2(eS[i], b.inv(negE));
        Bus field = b.zeroExtend(sig, MB + N);
        Bus shifted = b.shiftLeftLogical(field, amt);
        mag = Bus(shifted.begin() + MB, shifted.end());
        Bus droppedBits(shifted.begin(), shifted.begin() + MB);
        NetId dropped = b.orTree(droppedBits);
        st2 = {negE, isNaN, isInf, isZero, ovf, dropped};
    }
    pb.nextStage({{"sign", &sign}, {"mag", &mag}, {"st2", &st2}});

    // ---- Stage 3: negate, saturate, flags ----
    {
        Builder &b = pb.b();
        NetId negE = st2[0], isNaN = st2[1], isInf = st2[2],
              isZero = st2[3], ovf = st2[4], dropped = st2[5];
        Bus neg = b.subtract(b.constBus(0, N), mag, true).sum;
        Bus res = b.mux2Bus(sign[0], mag, neg);
        Bus maxC = b.constBus((1ULL << (N - 1)) - 1, N);
        Bus minC = b.constBus(1ULL << (N - 1), N);
        Bus satC = b.mux2Bus(sign[0], maxC, minC);
        Bus zeroC = b.constBus(0, N);
        res = b.mux2Bus(negE, res, zeroC);
        res = b.mux2Bus(ovf, res, satC);
        res = b.mux2Bus(isInf, res, satC);
        res = b.mux2Bus(isZero, res, zeroC);
        res = b.mux2Bus(isNaN, res, zeroC);
        NetId invalid = b.or2(isNaN, b.or2(isInf, ovf));
        NetId special = b.or2(invalid, isZero);
        NetId inexact = b.and2(
            b.inv(special),
            b.or2(b.and2(negE, b.inv(isZero)),
                  b.and2(dropped, b.inv(negE))));
        Bus flags = {invalid, b.c0(), b.c0(), b.c0(), inexact};
        pb.finish({{"result", res}, {"flags", flags}});
    }
    return pb.take();
}

} // namespace

std::vector<std::unique_ptr<Netlist>>
buildUnitCircuits(FpuUnitKind unit, const FpuConfig &cfg)
{
    switch (unit) {
      case FpuUnitKind::AddSubD: return buildAddSub(kFmtD, cfg);
      case FpuUnitKind::MulD: return buildMul(kFmtD, cfg);
      case FpuUnitKind::DivD: return buildDiv(kFmtD, cfg);
      case FpuUnitKind::I2FD: return buildI2F(kFmtD, 64);
      case FpuUnitKind::F2ID: return buildF2I(kFmtD, 64);
      case FpuUnitKind::AddSubS: return buildAddSub(kFmtS, cfg);
      case FpuUnitKind::MulS: return buildMul(kFmtS, cfg);
      case FpuUnitKind::DivS: return buildDiv(kFmtS, cfg);
      case FpuUnitKind::I2FS: return buildI2F(kFmtS, 32);
      case FpuUnitKind::F2IS: return buildF2I(kFmtS, 32);
    }
    panic("bad FpuUnitKind");
}

std::vector<std::unique_ptr<Netlist>>
buildIntegerSideNetlists()
{
    std::vector<std::unique_ptr<Netlist>> out;

    // Integer ALU: fast 64-bit adder plus logic ops behind a mux.
    {
        auto nl = std::make_unique<Netlist>("int-alu");
        Builder b(*nl);
        Bus a = nl->addInputBus("a", 64);
        Bus c = nl->addInputBus("b", 64);
        Bus sel = nl->addInputBus("sel", 2);
        Bus sum = b.koggeStoneAdd(a, c).sum;
        Bus land = b.and2Bus(a, c);
        Bus lor = b.or2Bus(a, c);
        Bus lxor = b.xor2Bus(a, c);
        Bus m0 = b.mux2Bus(sel[0], sum, land);
        Bus m1 = b.mux2Bus(sel[0], lor, lxor);
        Bus res = b.mux2Bus(sel[1], m0, m1);
        nl->addOutputBus("result", res);
        out.push_back(std::move(nl));
    }

    // Load/store address generation: base + sign-extended offset.
    {
        auto nl = std::make_unique<Netlist>("lsu-agen");
        Builder b(*nl);
        Bus base = nl->addInputBus("base", 64);
        Bus off = nl->addInputBus("off", 16);
        Bus offExt = off;
        while (offExt.size() < 64)
            offExt.push_back(off[15]); // sign extension wires
        Bus addr = b.koggeStoneAdd(base, offExt).sum;
        nl->addOutputBus("addr", addr);
        out.push_back(std::move(nl));
    }

    // Branch comparator.
    {
        auto nl = std::make_unique<Netlist>("branch-cmp");
        Builder b(*nl);
        Bus a = nl->addInputBus("a", 64);
        Bus c = nl->addInputBus("b", 64);
        NetId eq = b.equalBus(a, c);
        NetId lt = b.lessUnsigned(a, c);
        nl->addOutputBus("taken", {eq, lt});
        out.push_back(std::move(nl));
    }

    // Decode: synthetic control logic over a 32-bit instruction word.
    {
        auto nl = std::make_unique<Netlist>("decode");
        Builder b(*nl);
        Bus insn = nl->addInputBus("insn", 32);
        Bus opcode(insn.begin(), insn.begin() + 7);
        Bus rd(insn.begin() + 7, insn.begin() + 12);
        // One-hot destination decoder.
        Bus onehot;
        for (unsigned r = 0; r < 32; ++r) {
            Bus terms;
            for (unsigned i = 0; i < 5; ++i)
                terms.push_back((r >> i) & 1 ? rd[i] : b.inv(rd[i]));
            onehot.push_back(b.andTree(terms));
        }
        NetId isFp = b.and2(opcode[6], b.and2(opcode[4], opcode[0]));
        NetId isMem = b.and2(b.inv(opcode[6]), opcode[5]);
        NetId writes = b.or2(b.xorTree(opcode), b.orTree(rd));
        nl->addOutputBus("onehot", onehot);
        nl->addOutputBus("ctl", {isFp, isMem, writes});
        out.push_back(std::move(nl));
    }

    // Writeback bypass: 4:1 result select.
    {
        auto nl = std::make_unique<Netlist>("bypass-mux");
        Builder b(*nl);
        Bus r0 = nl->addInputBus("r0", 64);
        Bus r1 = nl->addInputBus("r1", 64);
        Bus r2 = nl->addInputBus("r2", 64);
        Bus r3 = nl->addInputBus("r3", 64);
        Bus sel = nl->addInputBus("sel", 2);
        Bus m0 = b.mux2Bus(sel[0], r0, r1);
        Bus m1 = b.mux2Bus(sel[0], r2, r3);
        Bus res = b.mux2Bus(sel[1], m0, m1);
        nl->addOutputBus("out", res);
        out.push_back(std::move(nl));
    }

    return out;
}

} // namespace tea::fpu
