/**
 * @file
 * Gate-level generators for the pipelined FPU datapaths.
 *
 * Each of the 10 physical units (add/sub, mul, div, i2f, f2i x double/
 * single precision) is generated as a chain of combinational stage
 * netlists following the marocchino-style organization of Fig. 3:
 * unpack/pre-normalize, align/prepare, mantissa arithmetic (multi-stage
 * for the multiply array and the restoring divider), normalize, and
 * round/pack. The datapaths implement exactly the semantics of
 * src/softfloat (RNE, FTZ, canonical qNaN), which the equivalence tests
 * verify bit-for-bit.
 *
 * Stage-depth parameters (FpuConfig) shape the slack profile of Fig. 4:
 * the multiply array stage is the deepest (it sets the clock), the
 * ripple mantissa adder of add/sub is close behind, the divider rows
 * and conversions sit lower.
 */

#ifndef TEA_FPU_FPU_CIRCUITS_HH
#define TEA_FPU_FPU_CIRCUITS_HH

#include <memory>
#include <vector>

#include "circuit/netlist.hh"
#include "fpu/fpu_types.hh"

namespace tea::fpu {

/** IEEE-754 format geometry. */
struct FpFmt
{
    unsigned eb; ///< exponent bits
    unsigned mb; ///< mantissa bits

    unsigned width() const { return 1 + eb + mb; }
    unsigned bias() const { return (1u << (eb - 1)) - 1; }
    uint64_t expMax() const { return (1ULL << eb) - 1; }
};

constexpr FpFmt kFmtD{11, 52};
constexpr FpFmt kFmtS{8, 23};

/** Pipeline-shape knobs (defaults calibrated for the Fig. 4 profile). */
struct FpuConfig
{
    unsigned mulRowsPerStageD = 45;
    unsigned mulRowsPerStageS = 12;
    unsigned divRowsPerStageD = 6;
    unsigned divRowsPerStageS = 4;
    /** Deep, data-dependent ripple mantissa adder in add/sub stage 3. */
    bool rippleMantissaAdd = true;
    /**
     * Carry-select split of the mantissa adder: ripple over this many
     * low bits, select over the rest (>= width means pure ripple).
     * Tunes how close the add/sub worst path sits to the clock the
     * multiplier array sets.
     */
    unsigned addsubSelectLowBitsD = 64;
    unsigned addsubSelectLowBitsS = 32;
    /** Base seed for per-instance process-variation jitter. */
    uint64_t variationSeed = 20210907;
};

/**
 * Build the stage netlists of one FPU unit.
 *
 * Input layout (stage 0):
 *  - AddSub: a[W], b[W], is_sub[1]
 *  - Mul/Div: a[W], b[W]
 *  - I2F: v[N]  (N = 64 double / 32 single)
 *  - F2I: a[W]
 * Final stage outputs: result[R], flags[5] (invalid, divbyzero,
 * overflow, underflow, inexact).
 */
std::vector<std::unique_ptr<circuit::Netlist>>
buildUnitCircuits(FpuUnitKind unit, const FpuConfig &cfg);

/**
 * Representative non-FPU pipeline logic (integer ALU, address
 * generation, branch compare, decode, bypass mux), used only for the
 * Fig. 4 slack-distribution comparison: these paths are short and never
 * fail at the studied voltage-reduction levels.
 */
std::vector<std::unique_ptr<circuit::Netlist>> buildIntegerSideNetlists();

} // namespace tea::fpu

#endif // TEA_FPU_FPU_CIRCUITS_HH
