#include "fpu/fpu_types.hh"

#include "util/logging.hh"

namespace tea::fpu {

const char *
fpuOpName(FpuOp op)
{
    switch (op) {
      case FpuOp::AddD: return "fp-add.d";
      case FpuOp::SubD: return "fp-sub.d";
      case FpuOp::MulD: return "fp-mul.d";
      case FpuOp::DivD: return "fp-div.d";
      case FpuOp::I2FD: return "i2f.d";
      case FpuOp::F2ID: return "f2i.d";
      case FpuOp::AddS: return "fp-add.s";
      case FpuOp::SubS: return "fp-sub.s";
      case FpuOp::MulS: return "fp-mul.s";
      case FpuOp::DivS: return "fp-div.s";
      case FpuOp::I2FS: return "i2f.s";
      case FpuOp::F2IS: return "f2i.s";
    }
    return "?";
}

const char *
fpuUnitName(FpuUnitKind unit)
{
    switch (unit) {
      case FpuUnitKind::AddSubD: return "fpu-addsub.d";
      case FpuUnitKind::MulD: return "fpu-mul.d";
      case FpuUnitKind::DivD: return "fpu-div.d";
      case FpuUnitKind::I2FD: return "fpu-i2f.d";
      case FpuUnitKind::F2ID: return "fpu-f2i.d";
      case FpuUnitKind::AddSubS: return "fpu-addsub.s";
      case FpuUnitKind::MulS: return "fpu-mul.s";
      case FpuUnitKind::DivS: return "fpu-div.s";
      case FpuUnitKind::I2FS: return "fpu-i2f.s";
      case FpuUnitKind::F2IS: return "fpu-f2i.s";
    }
    return "?";
}

FpuUnitKind
unitFor(FpuOp op)
{
    switch (op) {
      case FpuOp::AddD:
      case FpuOp::SubD: return FpuUnitKind::AddSubD;
      case FpuOp::MulD: return FpuUnitKind::MulD;
      case FpuOp::DivD: return FpuUnitKind::DivD;
      case FpuOp::I2FD: return FpuUnitKind::I2FD;
      case FpuOp::F2ID: return FpuUnitKind::F2ID;
      case FpuOp::AddS:
      case FpuOp::SubS: return FpuUnitKind::AddSubS;
      case FpuOp::MulS: return FpuUnitKind::MulS;
      case FpuOp::DivS: return FpuUnitKind::DivS;
      case FpuOp::I2FS: return FpuUnitKind::I2FS;
      case FpuOp::F2IS: return FpuUnitKind::F2IS;
    }
    panic("bad FpuOp");
}

bool
isDoubleOp(FpuOp op)
{
    switch (op) {
      case FpuOp::AddD:
      case FpuOp::SubD:
      case FpuOp::MulD:
      case FpuOp::DivD:
      case FpuOp::I2FD:
      case FpuOp::F2ID:
        return true;
      default:
        return false;
    }
}

unsigned
resultWidth(FpuOp op)
{
    return isDoubleOp(op) ? 64 : 32;
}

FpuOp
fpuOpFromName(const std::string &name)
{
    for (unsigned i = 0; i < kNumFpuOps; ++i) {
        auto op = static_cast<FpuOp>(i);
        if (name == fpuOpName(op))
            return op;
    }
    fatal("unknown FPU op '%s'", name.c_str());
}

} // namespace tea::fpu
