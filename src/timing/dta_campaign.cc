#include "timing/dta_campaign.hh"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdlib>
#include <functional>

#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "obs/trace.hh"
#include "util/bitops.hh"
#include "util/logging.hh"

namespace tea::timing {

using fpu::FpuOp;

namespace {

/** Heap order of the reservoir: the root is the entry to evict next. */
inline bool
reservoirAfter(uint64_t k1, uint64_t m1, uint64_t k2, uint64_t m2)
{
    return k1 != k2 ? k1 > k2 : m1 > m2;
}

/** Hand-rolled sift-down over the two parallel arrays: the reservoir
 * layout must not depend on the standard library's heap algorithm. */
void
reservoirSiftDown(std::vector<uint64_t> &pool,
                  std::vector<uint64_t> &keys, size_t i)
{
    size_t n = pool.size();
    for (;;) {
        size_t worst = i;
        for (size_t ch = 2 * i + 1; ch <= 2 * i + 2 && ch < n; ++ch)
            if (reservoirAfter(keys[ch], pool[ch], keys[worst],
                               pool[worst]))
                worst = ch;
        if (worst == i)
            return;
        std::swap(keys[i], keys[worst]);
        std::swap(pool[i], pool[worst]);
        i = worst;
    }
}

void
reservoirHeapify(std::vector<uint64_t> &pool, std::vector<uint64_t> &keys)
{
    for (size_t i = pool.size() / 2; i-- > 0;)
        reservoirSiftDown(pool, keys, i);
}

} // namespace

void
OpErrorStats::addMask(uint64_t mask, uint64_t key)
{
    if (maskPool.size() < kMaskPoolCap) {
        maskPool.push_back(mask);
        maskKeys.push_back(key);
        // Reaching the cap establishes the heap invariant every later
        // insert relies on; below it the pool stays in insert order.
        if (maskPool.size() == kMaskPoolCap)
            reservoirHeapify(maskPool, maskKeys);
        return;
    }
    if (!reservoirAfter(maskKeys[0], maskPool[0], key, mask))
        return; // newcomer ranks at or after the current worst
    maskKeys[0] = key;
    maskPool[0] = mask;
    reservoirSiftDown(maskPool, maskKeys, 0);
}

void
OpErrorStats::sealLoadedPool()
{
    // Sequential keys, no reordering: the saved pool layout must
    // survive a cache round-trip because the statistical model samples
    // masks by index. Loaded stats are terminal (never merged), so the
    // reservoir's heap invariant is not needed here.
    maskKeys.resize(maskPool.size());
    for (size_t i = 0; i < maskKeys.size(); ++i)
        maskKeys[i] = i;
}

uint64_t
maskPriority(uint64_t seed, unsigned op, uint64_t seq)
{
    uint64_t z = seed ^ (0x9e3779b97f4a7c15ULL * (seq + 1));
    z ^= static_cast<uint64_t>(op) << 56;
    z ^= z >> 30;
    z *= 0xbf58476d1ce4e5b9ULL;
    z ^= z >> 27;
    z *= 0x94d049bb133111ebULL;
    z ^= z >> 31;
    return z;
}

void
OpErrorStats::merge(const OpErrorStats &o)
{
    total += o.total;
    faulty += o.faulty;
    for (unsigned i = 0; i < 64; ++i)
        bitErrors[i] += o.bitErrors[i];
    // Hand-built stats may carry a bare pool; default to sequential
    // keys so merging them stays well-defined.
    for (size_t i = 0; i < o.maskPool.size(); ++i)
        addMask(o.maskPool[i],
                i < o.maskKeys.size() ? o.maskKeys[i] : i);
}

stats::Interval
OpErrorStats::errorInterval(double conf) const
{
    return stats::wilson(faulty, total, conf);
}

stats::Interval
OpErrorStats::berInterval(unsigned bit, double conf) const
{
    return stats::wilson(bitErrors[bit], total, conf);
}

stats::Interval
CampaignStats::errorInterval(double conf) const
{
    return stats::wilson(totalFaulty(), totalOps(), conf);
}

void
CampaignStats::merge(const CampaignStats &o)
{
    for (size_t i = 0; i < perOp.size(); ++i)
        perOp[i].merge(o.perOp[i]);
    engineFaults += o.engineFaults;
    interrupted = interrupted || o.interrupted;
}

uint64_t
CampaignStats::totalOps() const
{
    uint64_t n = 0;
    for (const auto &s : perOp)
        n += s.total;
    return n;
}

uint64_t
CampaignStats::totalFaulty() const
{
    uint64_t n = 0;
    for (const auto &s : perOp)
        n += s.faulty;
    return n;
}

double
CampaignStats::errorRatio() const
{
    uint64_t t = totalOps();
    return t ? static_cast<double>(totalFaulty()) /
                   static_cast<double>(t)
             : 0.0;
}

std::vector<uint64_t>
CampaignStats::flipCountHistogram(unsigned maxBits) const
{
    std::vector<uint64_t> hist(maxBits + 1, 0);
    for (const auto &s : perOp) {
        for (uint64_t mask : s.maskPool) {
            auto n = static_cast<unsigned>(popcount(mask));
            hist[std::min(n, maxBits)] += 1;
        }
    }
    return hist;
}

DtaCampaign::DtaCampaign(fpu::FpuCore &core, size_t point,
                         uint64_t maskSeed)
    : core_(core), point_(point), maskSeed_(maskSeed)
{
}

void
DtaCampaign::record(FpuOp op, uint64_t errorMask)
{
    OpErrorStats &s = stats_.of(op);
    uint64_t seq = s.total;
    ++s.total;
    if (errorMask != 0) {
        ++s.faulty;
        s.addMask(errorMask,
                  maskPriority(maskSeed_, static_cast<unsigned>(op),
                               seq));
        uint64_t m = errorMask;
        while (m) {
            unsigned bit = static_cast<unsigned>(__builtin_ctzll(m));
            ++s.bitErrors[bit];
            m &= m - 1;
        }
    }
}

void
DtaCampaign::execute(FpuOp op, uint64_t a, uint64_t b)
{
    auto res = core_.execute(point_, op, a, b);
    record(op, res.errorMask);
}

void
DtaCampaign::executeBlock(FpuOp op, const uint64_t *a, const uint64_t *b,
                          unsigned lanes)
{
    static obs::Counter mBatches = obs::Registry::global().counter(
        obs::metric::kDtaLaneBatches, "",
        "lane-batched DTA blocks executed");
    fpu::FpuCore::Exec execs[circuit::CompiledDta::kMaxLanes];
    core_.executeBatch(point_, op, a, b, lanes, execs);
    mBatches.inc(1);
    // Lanes are recorded in order, so the stats stream — totals,
    // per-bit counts, and reservoir key sequence — is exactly the one
    // `lanes` scalar execute() calls would produce.
    for (unsigned l = 0; l < lanes; ++l)
        record(op, execs[l].errorMask);
}

namespace {

/** Cached lane width; 0 = not yet resolved from the environment. */
std::atomic<unsigned> gDtaLanes{0};

/**
 * Lane ceiling of the active backend: the lane interpreter is a
 * 64-lane SWAR engine, while the compiled backend takes up to 512 and
 * the levelized one is a scalar loop with no width limit of its own
 * (it shares the compiled ceiling so plane buffers stay bounded).
 */
unsigned
maxDtaLanes()
{
    return circuit::dtaBackend() == circuit::DtaBackend::Lane
               ? circuit::LaneDta::kMaxLanes
               : circuit::CompiledDta::kMaxLanes;
}

unsigned
lanesFromEnv()
{
    const unsigned maxLanes = maxDtaLanes();
    const char *env = std::getenv("REPRO_DTA_LANES");
    if (!env || !*env)
        return maxLanes;
    char *end = nullptr;
    long n = std::strtol(env, &end, 10);
    if (end == env || *end != '\0' || n < 1 ||
        n > static_cast<long>(maxLanes)) {
        warn("REPRO_DTA_LANES='%s' invalid (want 1..%u); using %u", env,
             maxLanes, maxLanes);
        return maxLanes;
    }
    return static_cast<unsigned>(n);
}

} // namespace

unsigned
dtaLanes()
{
    unsigned lanes = gDtaLanes.load(std::memory_order_relaxed);
    if (lanes == 0) {
        lanes = lanesFromEnv();
        gDtaLanes.store(lanes, std::memory_order_relaxed);
    }
    return lanes;
}

void
setDtaLanes(unsigned lanes)
{
    if (lanes > maxDtaLanes())
        lanes = maxDtaLanes();
    gDtaLanes.store(lanes, std::memory_order_relaxed);
}

void
randomOperands(FpuOp op, Rng &rng, uint64_t &a, uint64_t &b)
{
    auto rnd64 = [&]() {
        uint64_t sign = rng.next() & (1ULL << 63);
        uint64_t exp = 700 + rng.nextBounded(650);
        uint64_t man = rng.next() & ((1ULL << 52) - 1);
        return sign | (exp << 52) | man;
    };
    auto rnd32 = [&]() -> uint64_t {
        uint32_t sign = static_cast<uint32_t>(rng.next()) & 0x80000000u;
        uint32_t exp = 60 + static_cast<uint32_t>(rng.nextBounded(135));
        uint32_t man = static_cast<uint32_t>(rng.next()) & 0x7fffffu;
        return sign | (exp << 23) | man;
    };
    switch (op) {
      case FpuOp::I2FD:
        a = rng.next();
        b = 0;
        break;
      case FpuOp::I2FS:
        a = static_cast<uint32_t>(rng.next());
        b = 0;
        break;
      case FpuOp::F2ID: {
        // In-range magnitudes so conversions exercise the shifter.
        uint64_t sign = rng.next() & (1ULL << 63);
        uint64_t exp = 1000 + rng.nextBounded(80); // ~2^-23 .. 2^57
        uint64_t man = rng.next() & ((1ULL << 52) - 1);
        a = sign | (exp << 52) | man;
        b = 0;
        break;
      }
      case FpuOp::F2IS: {
        uint32_t sign = static_cast<uint32_t>(rng.next()) & 0x80000000u;
        uint32_t exp = 110 + static_cast<uint32_t>(rng.nextBounded(45));
        uint32_t man = static_cast<uint32_t>(rng.next()) & 0x7fffffu;
        a = sign | (exp << 23) | man;
        b = 0;
        break;
      }
      default:
        if (fpu::isDoubleOp(op)) {
            a = rnd64();
            b = rnd64();
        } else {
            a = rnd32();
            b = rnd32();
        }
        break;
    }
}

namespace {

/**
 * Run `shards` tasks across the pool, each on its worker's private
 * operating-point replica with pipeline history cleared at entry, and
 * merge the per-shard statistics in shard order. Everything a shard
 * computes depends only on its index, which is what keeps results
 * bit-identical across thread counts.
 *
 * Containment: an exception escaping a shard body is caught, the shard
 * is retried (clean history, attempt-salted randomness for bodies that
 * draw any) up to kDtaShardAttempts times, and then dropped with
 * engineFaults bumped — one bad shard degrades the statistics instead
 * of aborting the campaign. A watchdog stop abandons unfinished shards
 * and flags the merged result interrupted.
 *
 * shardKey, when given, maps a shard's list position to the seed of
 * its reservoir key stream; adaptive campaigns pass the shard's
 * absolute (op, chunk) key so pooled masks are independent of how the
 * rounds happened to be cut.
 */
CampaignStats
runSharded(fpu::FpuCore &core, size_t point, size_t shards,
           ThreadPool *pool, const Watchdog *watchdog,
           const std::function<void(size_t, unsigned, DtaCampaign &)> &body,
           const std::function<uint64_t(size_t)> &shardKey = {})
{
    ThreadPool &tp = pool ? *pool : ThreadPool::global();
    auto points = core.workerPoints(point, tp.numThreads());
    std::vector<CampaignStats> parts(shards);
    std::vector<uint8_t> done(shards, 0);

    // Observation only; never feeds back into shard geometry, RNG
    // substreams, or the ordered merge below.
    obs::Registry &reg = obs::Registry::global();
    obs::Counter mRetries = reg.counter(
        obs::metric::kDtaShardRetries, "",
        "extra attempts spent containing faulted DTA shards");
    obs::Histogram mShardMs = reg.histogram(
        obs::metric::kDtaShardMs, obs::latencyBucketsMs(), "",
        "wall time of one DTA shard (all attempts)");

    tp.parallelFor(0, shards, [&](uint64_t s, unsigned worker) {
        if (watchdog && watchdog->poll() != Watchdog::Stop::None)
            return;
        size_t pt = points[worker];
        obs::Span shardSpan("dta.shard", "dta",
                            static_cast<int64_t>(s));
        auto t0 = std::chrono::steady_clock::now();
        for (unsigned attempt = 0; attempt < kDtaShardAttempts;
             ++attempt) {
            if (attempt > 0)
                mRetries.inc(1);
            try {
                core.reset(pt);
                // Shard index (or the caller's absolute key) seeds the
                // reservoir key stream — a pure function of the shard
                // geometry, not the worker.
                DtaCampaign campaign(core, pt,
                                     shardKey ? shardKey(s) : s);
                body(s, attempt, campaign);
                if (watchdog &&
                    watchdog->poll() != Watchdog::Stop::None)
                    return; // body bailed early; stats are partial
                parts[s] = campaign.takeStats();
                done[s] = 1;
                mShardMs.observe(
                    std::chrono::duration<double, std::milli>(
                        std::chrono::steady_clock::now() - t0)
                        .count());
                return;
            } catch (const std::exception &e) {
                warn("DTA shard %llu attempt %u faulted: %s",
                     static_cast<unsigned long long>(s), attempt + 1,
                     e.what());
            } catch (...) {
                warn("DTA shard %llu attempt %u faulted "
                     "(non-standard exception)",
                     static_cast<unsigned long long>(s), attempt + 1);
            }
        }
        done[s] = 2; // containment exhausted: drop the shard
    });
    CampaignStats merged;
    uint64_t mergedShards = 0;
    for (size_t s = 0; s < shards; ++s) {
        if (done[s] == 0) {
            merged.interrupted = true;
        } else if (done[s] == 2) {
            ++merged.engineFaults;
        } else {
            ++mergedShards;
            for (unsigned o = 0; o < fpu::kNumFpuOps; ++o)
                merged.perOp[o].merge(parts[s].perOp[o]);
        }
    }
    reg.counter(obs::metric::kDtaShards, "",
                "DTA shards merged into campaign statistics")
        .inc(mergedShards);
    reg.counter(obs::metric::kDtaShardsDropped, "",
                "DTA shards dropped after containment was exhausted")
        .inc(merged.engineFaults);
    reg.counter(obs::metric::kDtaOps, "",
                "gate-level operations characterized")
        .inc(merged.totalOps());
    return merged;
}

/** Poll cadence inside shard bodies (gate-level ops are slow). */
constexpr uint64_t kOpPollMask = 0x3F;

/**
 * Stream `count` random-operand ops of one type through a shard's
 * campaign, lane-batched where possible. Shared verbatim by the fixed
 * and adaptive characterizations so a shard produces identical
 * statistics for the same substream in either mode. Operands are
 * always drawn one op at a time in stream order, so the lane width
 * never shifts the RNG sequence.
 */
void
runRandomShardOps(DtaCampaign &campaign, FpuOp op, uint64_t count,
                  Rng &shardRng, unsigned lanes,
                  const Watchdog *watchdog)
{
    for (uint64_t i = 0; i < count;) {
        if (watchdog && (lanes > 1 || (i & kOpPollMask) == 0) &&
            watchdog->poll() != Watchdog::Stop::None)
            return;
        if (lanes > 1 && count - i >= lanes) {
            uint64_t a[circuit::CompiledDta::kMaxLanes];
            uint64_t b[circuit::CompiledDta::kMaxLanes];
            for (unsigned l = 0; l < lanes; ++l)
                randomOperands(op, shardRng, a[l], b[l]);
            campaign.executeBlock(op, a, b, lanes);
            i += lanes;
        } else {
            if (lanes > 1) {
                static obs::Counter mFallback =
                    obs::Registry::global().counter(
                        obs::metric::kDtaLaneFallbackOps, "",
                        "DTA ops run scalar while lane "
                        "batching was enabled");
                mFallback.inc(1);
            }
            uint64_t a, b;
            randomOperands(op, shardRng, a, b);
            campaign.execute(op, a, b);
            ++i;
        }
    }
}

/** One contiguous trace window (an independent replay shard). */
struct TraceWindow
{
    uint64_t begin;
    uint64_t count;
};

/**
 * Window placement of the WA-model replay. Depends only on
 * (trace size, maxOps): short traces replay fully in consecutive
 * windows; long ones sample kDtaShardOps-sized windows at an even
 * stride, clipped so at most maxOps ops run in total. Shared by the
 * fixed and adaptive trace campaigns, so an adaptive run consumes a
 * prefix of exactly the fixed-N window list.
 */
std::vector<TraceWindow>
traceWindows(uint64_t traceSize, uint64_t maxOps)
{
    const uint64_t kWindow = kDtaShardOps;
    std::vector<TraceWindow> windows;
    if (traceSize <= maxOps) {
        for (uint64_t begin = 0; begin < traceSize; begin += kWindow)
            windows.push_back(
                {begin,
                 std::min<uint64_t>(kWindow, traceSize - begin)});
    } else {
        uint64_t n = (maxOps + kWindow - 1) / kWindow;
        uint64_t stride = traceSize / n;
        uint64_t budget = maxOps;
        for (uint64_t w = 0; w < n && budget > 0; ++w) {
            uint64_t begin = w * stride;
            uint64_t len = std::min<uint64_t>(
                {kWindow, traceSize - begin, budget});
            windows.push_back({begin, len});
            budget -= len;
        }
    }
    return windows;
}

/**
 * Replay one trace window through a shard's campaign. Lane blocks span
 * maximal runs of one op type (a block drives a single unit); shorter
 * runs and op changes fall back to the scalar path. Grouping never
 * reorders the replay, so results stay bit-identical at every lane
 * width — and identical between the fixed and adaptive campaigns,
 * which share this body.
 */
void
runTraceWindowOps(DtaCampaign &campaign,
                  const std::vector<sim::FpTraceEntry> &trace,
                  const TraceWindow &w, unsigned lanes,
                  const Watchdog *watchdog)
{
    for (uint64_t i = 0; i < w.count;) {
        if (watchdog && (lanes > 1 || (i & kOpPollMask) == 0) &&
            watchdog->poll() != Watchdog::Stop::None)
            return;
        const auto &e0 = trace[w.begin + i];
        unsigned run = 1;
        while (run < lanes && i + run < w.count &&
               trace[w.begin + i + run].op == e0.op)
            ++run;
        if (lanes > 1 && run == lanes) {
            uint64_t a[circuit::CompiledDta::kMaxLanes];
            uint64_t b[circuit::CompiledDta::kMaxLanes];
            for (unsigned l = 0; l < lanes; ++l) {
                a[l] = trace[w.begin + i + l].a;
                b[l] = trace[w.begin + i + l].b;
            }
            campaign.executeBlock(e0.op, a, b, lanes);
            i += lanes;
        } else {
            if (lanes > 1) {
                static obs::Counter mFallback =
                    obs::Registry::global().counter(
                        obs::metric::kDtaLaneFallbackOps, "",
                        "DTA ops run scalar while lane "
                        "batching was enabled");
                mFallback.inc(1);
            }
            campaign.execute(e0.op, e0.a, e0.b);
            ++i;
        }
    }
}

} // namespace

CampaignStats
runRandomCampaign(fpu::FpuCore &core, size_t point, uint64_t countPerOp,
                  Rng &rng, ThreadPool *pool, const Watchdog *watchdog)
{
    // Fixed shard geometry: ceil(countPerOp / kDtaShardOps) shards per
    // op type, laid out op-major so shard index <-> (op, chunk) is a
    // pure function of countPerOp.
    uint64_t shardsPerOp =
        std::max<uint64_t>(1, (countPerOp + kDtaShardOps - 1) /
                                  kDtaShardOps);
    Rng base = rng.split();
    const unsigned lanes = dtaLanes();
    return runSharded(
        core, point, fpu::kNumFpuOps * shardsPerOp, pool, watchdog,
        [&, lanes](size_t s, unsigned attempt, DtaCampaign &campaign) {
            auto op = static_cast<FpuOp>(s / shardsPerOp);
            uint64_t chunk = s % shardsPerOp;
            uint64_t begin = chunk * kDtaShardOps;
            uint64_t end = std::min(begin + kDtaShardOps, countPerOp);
            // Attempt 0 uses the canonical substream; retries re-fork
            // deterministically off it.
            Rng shardRng = attempt == 0 ? base.fork(s)
                                        : base.fork(s).fork(attempt);
            runRandomShardOps(campaign, op, end - begin, shardRng,
                              lanes, watchdog);
        });
}

CampaignStats
runTraceCampaign(fpu::FpuCore &core, size_t point,
                 const std::vector<sim::FpTraceEntry> &trace,
                 uint64_t maxOps, ThreadPool *pool,
                 const Watchdog *watchdog)
{
    if (trace.empty())
        return CampaignStats{};
    auto windows = traceWindows(trace.size(), maxOps);
    const unsigned lanes = dtaLanes();
    return runSharded(
        core, point, windows.size(), pool, watchdog,
        [&, lanes](size_t s, unsigned, DtaCampaign &campaign) {
            runTraceWindowOps(campaign, trace, windows[s], lanes,
                              watchdog);
        });
}

namespace {

/**
 * Fold one adaptive round's merged shard statistics into the campaign
 * total and tell the planner what actually ran (merged counts, not
 * planned counts — dropped or interrupted shards must not count as
 * evidence). Returns true while the campaign may continue.
 */
bool
foldRound(CampaignStats &merged, CampaignStats &&round,
          stats::AdaptivePlanner &planner,
          const std::function<size_t(unsigned)> &stratumOf)
{
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        const OpErrorStats &d = round.perOp[o];
        if (d.total == 0 && d.faulty == 0)
            continue;
        planner.record(stratumOf(o), d.faulty, d.total);
        merged.perOp[o].merge(d);
    }
    merged.engineFaults += round.engineFaults;
    if (round.interrupted)
        merged.interrupted = true;
    return !merged.interrupted;
}

/** Publish one adaptive campaign's planner telemetry. */
void
publishPlannerMetrics(const stats::AdaptivePlanner &planner,
                      uint64_t fixedEquivalent)
{
    obs::Registry &reg = obs::Registry::global();
    reg.counter(obs::metric::kStatsRounds, "",
                "adaptive sampling rounds planned")
        .inc(planner.rounds());
    reg.counter(obs::metric::kStatsEarlyStops, "",
                "strata stopped early by interval convergence")
        .inc(planner.earlyStops());
    reg.counter(obs::metric::kStatsAllocatedTrials, "",
                "trials allocated by adaptive planners")
        .inc(planner.totalAllocated());
    uint64_t recorded = planner.totalRecorded();
    reg.counter(obs::metric::kStatsTrialsSaved, "",
                "trials avoided versus the fixed-size campaign")
        .inc(fixedEquivalent > recorded ? fixedEquivalent - recorded
                                        : 0);
}

} // namespace

CampaignStats
runAdaptiveRandomCampaign(fpu::FpuCore &core, size_t point,
                          const stats::PlannerConfig &cfg, Rng &rng,
                          ThreadPool *pool, const Watchdog *watchdog)
{
    // Work is always cut into whole kDtaShardOps-sized shards so the
    // shard geometry — and with it every substream — stays a pure
    // function of the planner's recorded counts.
    stats::PlannerConfig shardCfg = cfg;
    shardCfg.unit = kDtaShardOps;
    if (shardCfg.initialRound < kDtaShardOps * fpu::kNumFpuOps)
        shardCfg.initialRound = kDtaShardOps * fpu::kNumFpuOps;
    stats::AdaptivePlanner planner(shardCfg, fpu::kNumFpuOps);

    Rng base = rng.split();
    const unsigned lanes = dtaLanes();
    CampaignStats merged;
    // Next absolute chunk index per op type. Substreams and reservoir
    // keys are derived from (op, chunk), never from a shard's position
    // in a round's work list, so how rounds happen to be cut has no
    // effect on the statistics.
    std::array<uint64_t, fpu::kNumFpuOps> chunksDone{};

    struct Shard
    {
        unsigned op;
        uint64_t chunk;
        uint64_t count;
    };
    while (!planner.done()) {
        auto alloc = planner.planRound();
        std::vector<Shard> work;
        for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
            uint64_t left = alloc[o];
            while (left > 0) {
                uint64_t n = std::min(left, kDtaShardOps);
                work.push_back({o, chunksDone[o]++, n});
                left -= n;
            }
        }
        if (work.empty())
            break;
        auto key = [&](size_t s) {
            return (static_cast<uint64_t>(work[s].op) << 32) |
                   work[s].chunk;
        };
        CampaignStats round = runSharded(
            core, point, work.size(), pool, watchdog,
            [&, lanes](size_t s, unsigned attempt,
                       DtaCampaign &campaign) {
                const Shard &sh = work[s];
                Rng shardRng = attempt == 0
                                   ? base.fork(key(s))
                                   : base.fork(key(s)).fork(attempt);
                runRandomShardOps(campaign,
                                  static_cast<FpuOp>(sh.op), sh.count,
                                  shardRng, lanes, watchdog);
            },
            key);
        uint64_t before = planner.totalRecorded();
        if (!foldRound(merged, std::move(round), planner,
                       [](unsigned o) { return size_t{o}; }))
            break;
        if (planner.totalRecorded() == before) {
            // Containment dropped the whole round: no new evidence, so
            // another identical round would stall forever. Stop with
            // whatever (degraded) statistics accumulated so far.
            warn("adaptive DTA round produced no statistics; stopping");
            break;
        }
    }
    publishPlannerMetrics(planner, shardCfg.maxPerStratum *
                                       fpu::kNumFpuOps);
    return merged;
}

CampaignStats
runAdaptiveTraceCampaign(fpu::FpuCore &core, size_t point,
                         const std::vector<sim::FpTraceEntry> &trace,
                         uint64_t maxOps,
                         const stats::PlannerConfig &cfg,
                         ThreadPool *pool, const Watchdog *watchdog)
{
    if (trace.empty())
        return CampaignStats{};
    auto windows = traceWindows(trace.size(), maxOps);
    uint64_t totalWindowOps = 0;
    for (const auto &w : windows)
        totalWindowOps += w.count;

    // One stratum: the workload's aggregate error ratio. The cap is
    // the fixed-N op budget — an unconverged adaptive run degenerates
    // to exactly the fixed campaign.
    stats::PlannerConfig shardCfg = cfg;
    shardCfg.unit = kDtaShardOps;
    shardCfg.maxPerStratum =
        std::min(shardCfg.maxPerStratum, totalWindowOps);
    if (shardCfg.initialRound < kDtaShardOps)
        shardCfg.initialRound = kDtaShardOps;
    stats::AdaptivePlanner planner(shardCfg, 1);

    const unsigned lanes = dtaLanes();
    CampaignStats merged;
    size_t nextWindow = 0;
    while (!planner.done() && nextWindow < windows.size()) {
        uint64_t budget = planner.planRound()[0];
        // Consume the next run of fixed-N windows covering the budget.
        // Window indices are absolute, so every consumed window gets
        // its fixed-N reservoir key stream: a converged adaptive run
        // is a bit-exact subset of the fixed characterization.
        size_t first = nextWindow;
        uint64_t planned = 0;
        while (nextWindow < windows.size() && planned < budget)
            planned += windows[nextWindow++].count;
        CampaignStats round = runSharded(
            core, point, nextWindow - first, pool, watchdog,
            [&, lanes](size_t s, unsigned, DtaCampaign &campaign) {
                runTraceWindowOps(campaign, trace, windows[first + s],
                                  lanes, watchdog);
            },
            [&](size_t s) { return first + s; });
        if (!foldRound(merged, std::move(round), planner,
                       [](unsigned) { return size_t{0}; }))
            break;
    }
    publishPlannerMetrics(planner, totalWindowOps);
    return merged;
}

} // namespace tea::timing
