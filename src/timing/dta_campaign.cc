#include "timing/dta_campaign.hh"

#include <algorithm>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace tea::timing {

using fpu::FpuOp;

void
OpErrorStats::merge(const OpErrorStats &o)
{
    total += o.total;
    faulty += o.faulty;
    for (unsigned i = 0; i < 64; ++i)
        bitErrors[i] += o.bitErrors[i];
    maskPool.insert(maskPool.end(), o.maskPool.begin(),
                    o.maskPool.end());
}

uint64_t
CampaignStats::totalOps() const
{
    uint64_t n = 0;
    for (const auto &s : perOp)
        n += s.total;
    return n;
}

uint64_t
CampaignStats::totalFaulty() const
{
    uint64_t n = 0;
    for (const auto &s : perOp)
        n += s.faulty;
    return n;
}

double
CampaignStats::errorRatio() const
{
    uint64_t t = totalOps();
    return t ? static_cast<double>(totalFaulty()) /
                   static_cast<double>(t)
             : 0.0;
}

std::vector<uint64_t>
CampaignStats::flipCountHistogram(unsigned maxBits) const
{
    std::vector<uint64_t> hist(maxBits + 1, 0);
    for (const auto &s : perOp) {
        for (uint64_t mask : s.maskPool) {
            auto n = static_cast<unsigned>(popcount(mask));
            hist[std::min(n, maxBits)] += 1;
        }
    }
    return hist;
}

DtaCampaign::DtaCampaign(fpu::FpuCore &core, size_t point)
    : core_(core), point_(point)
{
}

void
DtaCampaign::execute(FpuOp op, uint64_t a, uint64_t b)
{
    auto res = core_.execute(point_, op, a, b);
    OpErrorStats &s = stats_.of(op);
    ++s.total;
    if (res.errorMask != 0) {
        ++s.faulty;
        s.maskPool.push_back(res.errorMask);
        uint64_t m = res.errorMask;
        while (m) {
            unsigned bit = static_cast<unsigned>(__builtin_ctzll(m));
            ++s.bitErrors[bit];
            m &= m - 1;
        }
    }
}

void
randomOperands(FpuOp op, Rng &rng, uint64_t &a, uint64_t &b)
{
    auto rnd64 = [&]() {
        uint64_t sign = rng.next() & (1ULL << 63);
        uint64_t exp = 700 + rng.nextBounded(650);
        uint64_t man = rng.next() & ((1ULL << 52) - 1);
        return sign | (exp << 52) | man;
    };
    auto rnd32 = [&]() -> uint64_t {
        uint32_t sign = static_cast<uint32_t>(rng.next()) & 0x80000000u;
        uint32_t exp = 60 + static_cast<uint32_t>(rng.nextBounded(135));
        uint32_t man = static_cast<uint32_t>(rng.next()) & 0x7fffffu;
        return sign | (exp << 23) | man;
    };
    switch (op) {
      case FpuOp::I2FD:
        a = rng.next();
        b = 0;
        break;
      case FpuOp::I2FS:
        a = static_cast<uint32_t>(rng.next());
        b = 0;
        break;
      case FpuOp::F2ID: {
        // In-range magnitudes so conversions exercise the shifter.
        uint64_t sign = rng.next() & (1ULL << 63);
        uint64_t exp = 1000 + rng.nextBounded(80); // ~2^-23 .. 2^57
        uint64_t man = rng.next() & ((1ULL << 52) - 1);
        a = sign | (exp << 52) | man;
        b = 0;
        break;
      }
      case FpuOp::F2IS: {
        uint32_t sign = static_cast<uint32_t>(rng.next()) & 0x80000000u;
        uint32_t exp = 110 + static_cast<uint32_t>(rng.nextBounded(45));
        uint32_t man = static_cast<uint32_t>(rng.next()) & 0x7fffffu;
        a = sign | (exp << 23) | man;
        b = 0;
        break;
      }
      default:
        if (fpu::isDoubleOp(op)) {
            a = rnd64();
            b = rnd64();
        } else {
            a = rnd32();
            b = rnd32();
        }
        break;
    }
}

CampaignStats
runRandomCampaign(fpu::FpuCore &core, size_t point, uint64_t countPerOp,
                  Rng &rng)
{
    DtaCampaign campaign(core, point);
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        auto op = static_cast<FpuOp>(o);
        for (uint64_t i = 0; i < countPerOp; ++i) {
            uint64_t a, b;
            randomOperands(op, rng, a, b);
            campaign.execute(op, a, b);
        }
    }
    return campaign.stats();
}

CampaignStats
runTraceCampaign(fpu::FpuCore &core, size_t point,
                 const std::vector<sim::FpTraceEntry> &trace,
                 uint64_t maxOps)
{
    DtaCampaign campaign(core, point);
    if (trace.empty())
        return campaign.stats();
    if (trace.size() <= maxOps) {
        for (const auto &e : trace)
            campaign.execute(e.op, e.a, e.b);
        return campaign.stats();
    }
    // Sample contiguous windows spread across the trace: contiguity
    // preserves the operand-transition history the timing model needs.
    const uint64_t kWindow = 256;
    uint64_t windows = (maxOps + kWindow - 1) / kWindow;
    uint64_t stride = trace.size() / windows;
    uint64_t done = 0;
    for (uint64_t w = 0; w < windows && done < maxOps; ++w) {
        uint64_t begin = w * stride;
        uint64_t end = std::min<uint64_t>(begin + kWindow, trace.size());
        for (uint64_t i = begin; i < end && done < maxOps; ++i, ++done)
            campaign.execute(trace[i].op, trace[i].a, trace[i].b);
    }
    return campaign.stats();
}

} // namespace tea::timing
