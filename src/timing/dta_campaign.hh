/**
 * @file
 * Model-development-phase DTA campaigns (Section III.A of the paper).
 *
 * A campaign streams operand pairs through the gate-level FPU at a
 * reduced-voltage operating point and accumulates, per instruction
 * type: the error ratio (Eq. 2), per-output-bit error ratios (BER), the
 * pool of observed error bitmasks, and the flip-count distribution
 * (Fig. 5). Streams come from uniform random operands (IA-model) or
 * from an FP operand trace of the actual workload (WA-model).
 */

#ifndef TEA_TIMING_DTA_CAMPAIGN_HH
#define TEA_TIMING_DTA_CAMPAIGN_HH

#include <array>
#include <cstdint>
#include <vector>

#include "fpu/fpu_core.hh"
#include "sim/func_sim.hh"
#include "stats/planner.hh"
#include "util/rng.hh"
#include "util/threadpool.hh"
#include "util/watchdog.hh"

namespace tea::timing {

/** Per-instruction-type error statistics from one DTA campaign. */
struct OpErrorStats
{
    /**
     * Reservoir cap on maskPool: keeps campaign memory bounded on
     * billion-op campaigns. Matches the serialization cap, so pooled
     * masks always round-trip through the stats cache losslessly.
     */
    static constexpr size_t kMaskPoolCap = 4096;

    uint64_t total = 0;
    uint64_t faulty = 0;
    std::array<uint64_t, 64> bitErrors{};
    /**
     * Observed non-zero error bitmasks (the model's sampling pool).
     * Bounded at kMaskPoolCap entries by a deterministic reservoir:
     * each mask carries a priority key (maskPriority of the shard seed
     * and sequence number) and the pool keeps the masks with the
     * smallest keys. Smallest-k selection is associative and
     * commutative, so the retained *set* is independent of how the
     * stream was split into shards — merging per-shard pools in shard
     * order yields the same pool at any thread or lane count.
     */
    std::vector<uint64_t> maskPool;
    /** Reservoir priority key of each pooled mask (parallel array). */
    std::vector<uint64_t> maskKeys;

    /** Reservoir insert; below the cap this is a plain append. */
    void addMask(uint64_t mask, uint64_t key);
    /**
     * Rebuild keys after maskPool was filled directly (cache load):
     * loaded masks get sequential keys; their order is preserved.
     */
    void sealLoadedPool();

    /** Error ratio per Eq. 2: faulty / total. */
    double errorRatio() const
    {
        return total ? static_cast<double>(faulty) /
                           static_cast<double>(total)
                     : 0.0;
    }
    /** Bit error ratio of one output bit position. */
    double ber(unsigned bit) const
    {
        return total ? static_cast<double>(bitErrors[bit]) /
                           static_cast<double>(total)
                     : 0.0;
    }
    /** Confidence interval on the error ratio (Wilson score). */
    stats::Interval errorInterval(double conf = 0.95) const;
    /** Confidence interval on one bit's BER (Wilson score). */
    stats::Interval berInterval(unsigned bit, double conf = 0.95) const;
    void merge(const OpErrorStats &o);
};

/** Statistics for all 12 instruction types. */
struct CampaignStats
{
    std::array<OpErrorStats, fpu::kNumFpuOps> perOp;

    /**
     * Shards dropped after repeated internal faults. A non-zero count
     * marks the statistics as degraded; the toolflow refuses to cache
     * them so the next invocation re-characterizes.
     */
    uint64_t engineFaults = 0;
    /**
     * True when a cooperative cancellation cut the campaign short.
     * Interrupted statistics are partial and must never be cached.
     */
    bool interrupted = false;

    const OpErrorStats &of(fpu::FpuOp op) const
    {
        return perOp[static_cast<size_t>(op)];
    }
    OpErrorStats &of(fpu::FpuOp op)
    {
        return perOp[static_cast<size_t>(op)];
    }
    /**
     * Fold another campaign's statistics in, per-op, including the
     * degradation/interruption flags — merging a partial (interrupted)
     * slice marks the aggregate partial too.
     */
    void merge(const CampaignStats &o);

    uint64_t totalOps() const;
    uint64_t totalFaulty() const;
    /** Aggregate error ratio across all types. */
    double errorRatio() const;
    /** Confidence interval on the aggregate error ratio (Wilson). */
    stats::Interval errorInterval(double conf = 0.95) const;
    /** Distribution of flipped-bit counts among faulty ops (Fig. 5). */
    std::vector<uint64_t> flipCountHistogram(unsigned maxBits = 16) const;
};

/**
 * Streams operations through one FpuCore operating point, accumulating
 * stats. The FPU pipeline history persists across execute() calls, so
 * the order of the stream matters — exactly the dynamic, data-dependent
 * behaviour the paper models.
 */
class DtaCampaign
{
  public:
    /**
     * maskSeed salts the reservoir priority keys of recorded masks;
     * sharded campaigns pass the shard index so every shard draws an
     * independent deterministic key stream.
     */
    DtaCampaign(fpu::FpuCore &core, size_t point, uint64_t maskSeed = 0);

    /** Run one op and record its (possibly empty) error mask. */
    void execute(fpu::FpuOp op, uint64_t a, uint64_t b);

    /**
     * Run `lanes` (<= 64) same-op instructions through the
     * bit-parallel lane engine and record each lane in order —
     * statistics are bit-identical to `lanes` execute() calls.
     */
    void executeBlock(fpu::FpuOp op, const uint64_t *a,
                      const uint64_t *b, unsigned lanes);

    const CampaignStats &stats() const { return stats_; }
    /** Move the accumulated stats out (shard merge path). */
    CampaignStats takeStats() { return std::move(stats_); }

  private:
    void record(fpu::FpuOp op, uint64_t errorMask);

    fpu::FpuCore &core_;
    size_t point_;
    uint64_t maskSeed_;
    CampaignStats stats_;
};

/**
 * Deterministic reservoir priority of the `seq`-th recorded op of type
 * `op` in the stream salted by `seed` (a splitmix64-style mix). A pure
 * function of its arguments, so the lane-batched and scalar paths — and
 * every thread count — assign identical keys.
 */
uint64_t maskPriority(uint64_t seed, unsigned op, uint64_t seq);

/**
 * Batch width campaigns use, cached from REPRO_DTA_LANES on first
 * call. The ceiling tracks the active DTA backend (see
 * circuit::dtaBackend): 64 on the lane backend, 512 otherwise; unset
 * defaults to the ceiling and out-of-range values warn and clamp to
 * it. 1 disables batching. Campaign results are bit-identical at
 * every width — the knob is purely a performance/debugging switch.
 */
unsigned dtaLanes();

/** Override the lane width (0 = re-read REPRO_DTA_LANES). */
void setDtaLanes(unsigned lanes);

/**
 * Uniform random operand of paper-style characterization for an op:
 * full-range significands with bounded exponents (so characterization
 * exercises the arithmetic paths rather than the overflow specials).
 */
void randomOperands(fpu::FpuOp op, Rng &rng, uint64_t &a, uint64_t &b);

/**
 * Ops per DTA shard. Characterization work is cut into fixed shards of
 * this size *before* any of it runs, so the shard geometry — and with
 * it every shard's forked Rng stream and clean-history starting state —
 * is a function of the campaign parameters only, never of the thread
 * count. That is what makes campaign results bit-identical from 1 to N
 * threads.
 */
constexpr uint64_t kDtaShardOps = 512;

/**
 * Containment attempts per DTA shard: a shard whose execution throws
 * is retried once (transient faults) and then dropped, bumping
 * CampaignStats::engineFaults, instead of aborting the campaign.
 */
constexpr unsigned kDtaShardAttempts = 2;

/**
 * IA-model characterization: `count` random-operand ops per type.
 * Sharded across `pool` (the global pool when null); each shard runs
 * on its worker's private operating-point replica with pipeline
 * history reset at the shard boundary, operands drawn from
 * rng.fork(shardIndex), and shards merged in index order. A watchdog,
 * when given, is polled between operations so SIGINT/SIGTERM stop the
 * characterization promptly (the result is then flagged interrupted).
 */
CampaignStats runRandomCampaign(fpu::FpuCore &core, size_t point,
                                uint64_t countPerOp, Rng &rng,
                                ThreadPool *pool = nullptr,
                                const Watchdog *watchdog = nullptr);

/**
 * WA-model characterization: replay (a sample of) a workload's FP
 * operand trace in program order. Samples up to maxOps entries as
 * contiguous windows evenly spaced across the trace (contiguity
 * preserves the operand-transition history the timing model needs).
 * Windows are independent shards: each starts from clean pipeline
 * history, so results are thread-count-invariant.
 */
CampaignStats runTraceCampaign(fpu::FpuCore &core, size_t point,
                               const std::vector<sim::FpTraceEntry> &trace,
                               uint64_t maxOps,
                               ThreadPool *pool = nullptr,
                               const Watchdog *watchdog = nullptr);

/**
 * Confidence-driven IA characterization: instead of a fixed count per
 * op type, sample in deterministic rounds until every type's error-
 * ratio interval is tighter than cfg.ciTarget (or the cfg.maxPerStratum
 * cap is hit). Rounds are allocated across the 12 op-type strata by
 * Neyman allocation (see stats::AdaptivePlanner); each 512-op shard
 * draws operands from the substream keyed by its absolute (op, chunk)
 * position, and counts are folded in only at round barriers, so
 * results are bit-identical at any thread or lane count. cfg.unit and
 * cfg.initialRound are overridden to the shard geometry.
 */
CampaignStats
runAdaptiveRandomCampaign(fpu::FpuCore &core, size_t point,
                          const stats::PlannerConfig &cfg, Rng &rng,
                          ThreadPool *pool = nullptr,
                          const Watchdog *watchdog = nullptr);

/**
 * Confidence-driven WA characterization: the window geometry of
 * runTraceCampaign(maxOps) is computed up front, then windows are
 * consumed in order, round by round, until the aggregate error-ratio
 * interval meets cfg.ciTarget or the window list is exhausted. The
 * consumed windows are a prefix of the fixed-N window list with their
 * fixed-N reservoir keys, so a converged adaptive run is a bit-exact
 * subset of the fixed-N characterization.
 */
CampaignStats
runAdaptiveTraceCampaign(fpu::FpuCore &core, size_t point,
                         const std::vector<sim::FpTraceEntry> &trace,
                         uint64_t maxOps,
                         const stats::PlannerConfig &cfg,
                         ThreadPool *pool = nullptr,
                         const Watchdog *watchdog = nullptr);

} // namespace tea::timing

#endif // TEA_TIMING_DTA_CAMPAIGN_HH
