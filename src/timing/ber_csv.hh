/**
 * @file
 * CSV rendering of campaign statistics: the machine-readable artifact
 * behind the fig. 7 / fig. 8 bit-probability tables. The output is a
 * pure function of the statistics, rendered with deterministic
 * formatting, so two campaigns with bit-identical stats produce
 * byte-identical CSV — the property the lane-batch equivalence tests
 * assert end to end.
 */

#ifndef TEA_TIMING_BER_CSV_HH
#define TEA_TIMING_BER_CSV_HH

#include <string>

#include "timing/dta_campaign.hh"

namespace tea::timing {

/**
 * One row per instruction type: op, total, faulty, error_ratio, then
 * ber0..ber63 (per-output-bit error ratios, LSB first). Ratios use
 * round-trip precision (%.17g).
 */
std::string berCsv(const CampaignStats &stats);

} // namespace tea::timing

#endif // TEA_TIMING_BER_CSV_HH
