#include "timing/ber_csv.hh"

#include <cstdio>

namespace tea::timing {

std::string
berCsv(const CampaignStats &stats)
{
    std::string out = "op,total,faulty,error_ratio";
    for (unsigned b = 0; b < 64; ++b) {
        out += ",ber";
        out += std::to_string(b);
    }
    out += "\n";
    char buf[64];
    for (unsigned o = 0; o < fpu::kNumFpuOps; ++o) {
        const OpErrorStats &s = stats.perOp[o];
        out += fpu::fpuOpName(static_cast<fpu::FpuOp>(o));
        std::snprintf(buf, sizeof(buf), ",%llu,%llu",
                      static_cast<unsigned long long>(s.total),
                      static_cast<unsigned long long>(s.faulty));
        out += buf;
        std::snprintf(buf, sizeof(buf), ",%.17g", s.errorRatio());
        out += buf;
        for (unsigned b = 0; b < 64; ++b) {
            std::snprintf(buf, sizeof(buf), ",%.17g", s.ber(b));
            out += buf;
        }
        out += "\n";
    }
    return out;
}

} // namespace tea::timing
