/**
 * @file
 * Deterministic IEEE-754 soft-float reference model.
 *
 * This is the single definition of floating-point semantics in the
 * framework: the functional/OoO simulators execute FP instructions with
 * it, and the gate-level FPU (src/fpu) is tested bit-exact against it.
 * Host floating point never enters the simulated pipeline, so goldens
 * are identical on every machine.
 *
 * Semantics:
 *  - round-to-nearest-even for add/sub/mul/div/i2f;
 *  - round-toward-zero for f2i (matching C cast semantics);
 *  - subnormals are flushed to (signed) zero on input and output
 *    (FTZ + DAZ), mirroring the simplified denormal handling of the
 *    marocchino FPU the paper characterizes;
 *  - a single canonical quiet NaN (exp all-ones, mantissa MSB set) is
 *    produced for every invalid operation.
 */

#ifndef TEA_SOFTFLOAT_SOFTFLOAT_HH
#define TEA_SOFTFLOAT_SOFTFLOAT_HH

#include <cstdint>

namespace tea::sf {

/** IEEE exception flags raised by an operation. */
struct Flags
{
    bool invalid = false;
    bool divByZero = false;
    bool overflow = false;
    bool underflow = false;
    bool inexact = false;

    /** True if any flag is raised. */
    bool any() const
    {
        return invalid || divByZero || overflow || underflow || inexact;
    }

    /** True if a trap-worthy (per the crash taxonomy) flag is raised. */
    bool severe() const { return invalid || divByZero || overflow; }

    void merge(const Flags &o);
};

// ---------------------------------------------------------------------
// Double precision (operands and results are raw IEEE-754 bit patterns).
// ---------------------------------------------------------------------

uint64_t add64(uint64_t a, uint64_t b, Flags *flags = nullptr);
uint64_t sub64(uint64_t a, uint64_t b, Flags *flags = nullptr);
uint64_t mul64(uint64_t a, uint64_t b, Flags *flags = nullptr);
uint64_t div64(uint64_t a, uint64_t b, Flags *flags = nullptr);
/** int64 -> double, RNE. */
uint64_t i2f64(int64_t v, Flags *flags = nullptr);
/** double -> int64, RTZ; saturates and raises invalid out of range. */
int64_t f2i64(uint64_t a, Flags *flags = nullptr);

// ---------------------------------------------------------------------
// Single precision.
// ---------------------------------------------------------------------

uint32_t add32(uint32_t a, uint32_t b, Flags *flags = nullptr);
uint32_t sub32(uint32_t a, uint32_t b, Flags *flags = nullptr);
uint32_t mul32(uint32_t a, uint32_t b, Flags *flags = nullptr);
uint32_t div32(uint32_t a, uint32_t b, Flags *flags = nullptr);
/** int32 -> float, RNE. */
uint32_t i2f32(int32_t v, Flags *flags = nullptr);
/** float -> int32, RTZ; saturates and raises invalid out of range. */
int32_t f2i32(uint32_t a, Flags *flags = nullptr);

// ---------------------------------------------------------------------
// Comparisons (quiet; NaN compares unordered -> false, raises invalid).
// ---------------------------------------------------------------------

bool eq64(uint64_t a, uint64_t b, Flags *flags = nullptr);
bool lt64(uint64_t a, uint64_t b, Flags *flags = nullptr);
bool le64(uint64_t a, uint64_t b, Flags *flags = nullptr);

// ---------------------------------------------------------------------
// Classification and conversion helpers.
// ---------------------------------------------------------------------

bool isNaN64(uint64_t a);
bool isInf64(uint64_t a);
bool isZero64(uint64_t a);
bool isSubnormal64(uint64_t a);
bool isNaN32(uint32_t a);
bool isInf32(uint32_t a);

/** The canonical quiet NaN patterns. */
constexpr uint64_t qnan64 = 0x7ff8000000000000ULL;
constexpr uint32_t qnan32 = 0x7fc00000u;

/** Host-double <-> raw-bits conversion (for host-side test harnesses). */
uint64_t fromDouble(double d);
double toDouble(uint64_t bits);
uint32_t fromFloat(float f);
float toFloat(uint32_t bits);

/** double bits -> float bits with RNE (used by SP store narrowing). */
uint32_t narrow64to32(uint64_t a, Flags *flags = nullptr);
/** float bits -> double bits (exact). */
uint64_t widen32to64(uint32_t a);

} // namespace tea::sf

#endif // TEA_SOFTFLOAT_SOFTFLOAT_HH
