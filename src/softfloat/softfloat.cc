#include "softfloat/softfloat.hh"

#include <bit>
#include <cstring>

#include "util/bitops.hh"
#include "util/logging.hh"

namespace tea::sf {

void
Flags::merge(const Flags &o)
{
    invalid |= o.invalid;
    divByZero |= o.divByZero;
    overflow |= o.overflow;
    underflow |= o.underflow;
    inexact |= o.inexact;
}

namespace {

using u128 = unsigned __int128;

enum class Cls { Zero, Normal, Inf, NaN };

/**
 * Format-parameterized IEEE-754 engine. EB/MB are the exponent and
 * mantissa widths; values travel as raw bit patterns in the low
 * 1+EB+MB bits of a uint64_t.
 */
template <unsigned EB, unsigned MB>
struct Fp
{
    static constexpr unsigned totalBits = 1 + EB + MB;
    static constexpr int bias = (1 << (EB - 1)) - 1;
    static constexpr uint64_t expMax = (1ULL << EB) - 1;
    static constexpr uint64_t qnan =
        (expMax << MB) | (1ULL << (MB - 1));
    static constexpr uint64_t sigOne = 1ULL << MB; // implicit leading 1

    struct Unpacked
    {
        bool sign;
        int exp;      // unbiased, valid for Normal
        uint64_t sig; // [2^MB, 2^(MB+1)) for Normal
        Cls cls;
    };

    static uint64_t
    packRaw(bool sign, uint64_t biasedExp, uint64_t man)
    {
        return (static_cast<uint64_t>(sign) << (EB + MB)) |
               (biasedExp << MB) | man;
    }

    static uint64_t zero(bool sign) { return packRaw(sign, 0, 0); }
    static uint64_t inf(bool sign) { return packRaw(sign, expMax, 0); }

    static Unpacked
    unpack(uint64_t a)
    {
        Unpacked u;
        u.sign = bit(a, EB + MB);
        uint64_t e = bits(a, MB, EB);
        uint64_t m = bits(a, 0, MB);
        if (e == expMax) {
            u.cls = m ? Cls::NaN : Cls::Inf;
            u.exp = 0;
            u.sig = 0;
        } else if (e == 0) {
            // FTZ/DAZ: subnormal inputs are treated as zero.
            u.cls = Cls::Zero;
            u.exp = 0;
            u.sig = 0;
        } else {
            u.cls = Cls::Normal;
            u.exp = static_cast<int>(e) - bias;
            u.sig = sigOne | m;
        }
        return u;
    }

    /**
     * Round and pack a normalized result.
     *
     * @param exp unbiased exponent of the implied-1 bit.
     * @param sig significand with 3 guard bits: value in
     *            [2^(MB+3), 2^(MB+4)); bit 0 is sticky.
     */
    static uint64_t
    roundPack(bool sign, int exp, uint64_t sig, Flags &fl)
    {
        panic_if(sig < (sigOne << 3) || sig >= (sigOne << 4),
                 "roundPack: unnormalized significand");
        uint64_t grs = sig & 7;
        uint64_t man = sig >> 3;
        bool roundUp = (grs > 4) || (grs == 4 && (man & 1));
        if (grs)
            fl.inexact = true;
        if (roundUp) {
            ++man;
            if (man == (sigOne << 1)) {
                man >>= 1;
                ++exp;
            }
        }
        int biased = exp + bias;
        if (biased >= static_cast<int>(expMax)) {
            fl.overflow = true;
            fl.inexact = true;
            return inf(sign);
        }
        if (biased <= 0) {
            // Result below the normal range: flush to zero.
            fl.underflow = true;
            fl.inexact = true;
            return zero(sign);
        }
        return packRaw(sign, static_cast<uint64_t>(biased), man & ~sigOne);
    }

    /** Right-shift keeping a sticky bit in bit 0. */
    static uint64_t
    shiftRightSticky(uint64_t v, unsigned n)
    {
        if (n == 0)
            return v;
        if (n >= 64)
            return v ? 1 : 0;
        uint64_t sticky = (v & lowMask(n)) ? 1 : 0;
        return (v >> n) | sticky;
    }

    static uint64_t
    add(uint64_t a, uint64_t b, bool subtract, Flags &fl)
    {
        Unpacked ua = unpack(a);
        Unpacked ub = unpack(b);
        if (subtract)
            ub.sign = !ub.sign;

        if (ua.cls == Cls::NaN || ub.cls == Cls::NaN)
            return qnan;
        if (ua.cls == Cls::Inf && ub.cls == Cls::Inf) {
            if (ua.sign != ub.sign) {
                fl.invalid = true;
                return qnan;
            }
            return inf(ua.sign);
        }
        if (ua.cls == Cls::Inf)
            return inf(ua.sign);
        if (ub.cls == Cls::Inf)
            return inf(ub.sign);
        if (ua.cls == Cls::Zero && ub.cls == Cls::Zero) {
            // (+0)+(+0)=+0, (-0)+(-0)=-0, mixed -> +0 under RNE.
            return zero(ua.sign && ub.sign);
        }
        if (ua.cls == Cls::Zero)
            return packRaw(ub.sign, bits(b, MB, EB), bits(b, 0, MB));
        if (ub.cls == Cls::Zero)
            return packRaw(ua.sign, bits(a, MB, EB), bits(a, 0, MB));

        // Both normal. Work with 3 guard bits of headroom.
        uint64_t sa = ua.sig << 3;
        uint64_t sb = ub.sig << 3;
        int exp;
        if (ua.exp >= ub.exp) {
            exp = ua.exp;
            sb = shiftRightSticky(sb, static_cast<unsigned>(ua.exp - ub.exp));
        } else {
            exp = ub.exp;
            sa = shiftRightSticky(sa, static_cast<unsigned>(ub.exp - ua.exp));
        }

        bool sign;
        uint64_t sig;
        if (ua.sign == ub.sign) {
            sign = ua.sign;
            sig = sa + sb;
            if (sig >= (sigOne << 4)) {
                sig = shiftRightSticky(sig, 1);
                ++exp;
            }
        } else {
            if (sa == sb)
                return zero(false); // exact cancellation -> +0 (RNE)
            if (sa > sb) {
                sign = ua.sign;
                sig = sa - sb;
            } else {
                sign = ub.sign;
                sig = sb - sa;
            }
            // Normalize left.
            int lead = 63 - std::countl_zero(sig);
            int want = static_cast<int>(MB) + 3;
            if (lead > want) {
                sig = shiftRightSticky(sig, static_cast<unsigned>(lead - want));
                exp += lead - want;
            } else if (lead < want) {
                sig <<= (want - lead);
                exp -= want - lead;
            }
        }
        return roundPack(sign, exp, sig, fl);
    }

    static uint64_t
    mul(uint64_t a, uint64_t b, Flags &fl)
    {
        Unpacked ua = unpack(a);
        Unpacked ub = unpack(b);
        bool sign = ua.sign ^ ub.sign;

        if (ua.cls == Cls::NaN || ub.cls == Cls::NaN)
            return qnan;
        if ((ua.cls == Cls::Inf && ub.cls == Cls::Zero) ||
            (ua.cls == Cls::Zero && ub.cls == Cls::Inf)) {
            fl.invalid = true;
            return qnan;
        }
        if (ua.cls == Cls::Inf || ub.cls == Cls::Inf)
            return inf(sign);
        if (ua.cls == Cls::Zero || ub.cls == Cls::Zero)
            return zero(sign);

        u128 prod = static_cast<u128>(ua.sig) * static_cast<u128>(ub.sig);
        // prod in [2^(2MB), 2^(2MB+2)).
        int exp = ua.exp + ub.exp;
        unsigned topBit = 2 * MB;
        if (prod >= (static_cast<u128>(1) << (2 * MB + 1))) {
            ++exp;
            ++topBit;
        }
        // Keep MB+4 bits (1 + MB mantissa + 3 guard); fold rest into sticky.
        unsigned drop = topBit - (MB + 3);
        uint64_t sig = static_cast<uint64_t>(prod >> drop);
        if (prod & ((static_cast<u128>(1) << drop) - 1))
            sig |= 1;
        return roundPack(sign, exp, sig, fl);
    }

    static uint64_t
    div(uint64_t a, uint64_t b, Flags &fl)
    {
        Unpacked ua = unpack(a);
        Unpacked ub = unpack(b);
        bool sign = ua.sign ^ ub.sign;

        if (ua.cls == Cls::NaN || ub.cls == Cls::NaN)
            return qnan;
        if (ua.cls == Cls::Inf && ub.cls == Cls::Inf) {
            fl.invalid = true;
            return qnan;
        }
        if (ua.cls == Cls::Zero && ub.cls == Cls::Zero) {
            fl.invalid = true;
            return qnan;
        }
        if (ua.cls == Cls::Inf)
            return inf(sign);
        if (ub.cls == Cls::Inf)
            return zero(sign);
        if (ua.cls == Cls::Zero)
            return zero(sign);
        if (ub.cls == Cls::Zero) {
            fl.divByZero = true;
            return inf(sign);
        }

        int exp = ua.exp - ub.exp;
        uint64_t sa = ua.sig;
        if (sa < ub.sig) {
            sa <<= 1;
            --exp;
        }
        // Quotient with 2 fraction guard bits, then a sticky bit.
        u128 num = static_cast<u128>(sa) << (MB + 2);
        uint64_t q = static_cast<uint64_t>(num / ub.sig);
        uint64_t r = static_cast<uint64_t>(num % ub.sig);
        uint64_t sig = (q << 1) | (r ? 1 : 0);
        return roundPack(sign, exp, sig, fl);
    }

    static uint64_t
    i2f(int64_t v, Flags &fl)
    {
        if (v == 0)
            return zero(false);
        bool sign = v < 0;
        uint64_t mag = sign ? (~static_cast<uint64_t>(v) + 1)
                            : static_cast<uint64_t>(v);
        int k = 63 - std::countl_zero(mag);
        int exp = k;
        // Align the leading 1 to bit MB+3 (mantissa plus 3 guard bits).
        unsigned e = static_cast<unsigned>(k);
        uint64_t sig;
        if (e <= MB + 3)
            sig = mag << (MB + 3 - e);
        else
            sig = shiftRightSticky(mag, e - (MB + 3));
        return roundPack(sign, exp, sig, fl);
    }

    /** Max magnitude exponent for an N-bit signed integer target. */
    static int64_t
    f2i(uint64_t a, unsigned intBits, Flags &fl)
    {
        Unpacked ua = unpack(a);
        int64_t maxVal =
            static_cast<int64_t>((1ULL << (intBits - 1)) - 1);
        int64_t minVal = -maxVal - 1;
        if (ua.cls == Cls::NaN) {
            fl.invalid = true;
            return 0;
        }
        if (ua.cls == Cls::Inf) {
            fl.invalid = true;
            return ua.sign ? minVal : maxVal;
        }
        if (ua.cls == Cls::Zero)
            return 0;
        if (ua.exp < 0) {
            fl.inexact = true;
            return 0;
        }
        unsigned e = static_cast<unsigned>(ua.exp);
        if (e >= intBits - 1) {
            // Only -2^(intBits-1) is exactly representable at e==intBits-1.
            if (ua.sign && e == intBits - 1 && ua.sig == sigOne)
                return minVal;
            fl.invalid = true;
            return ua.sign ? minVal : maxVal;
        }
        uint64_t mag;
        if (e >= MB) {
            mag = ua.sig << (e - MB);
        } else {
            mag = ua.sig >> (MB - e);
            if (ua.sig & lowMask(MB - e))
                fl.inexact = true;
        }
        return ua.sign ? -static_cast<int64_t>(mag)
                       : static_cast<int64_t>(mag);
    }
};

using F64 = Fp<11, 52>;
using F32 = Fp<8, 23>;

} // namespace

uint64_t
add64(uint64_t a, uint64_t b, Flags *flags)
{
    Flags fl;
    uint64_t r = F64::add(a, b, false, fl);
    if (flags)
        flags->merge(fl);
    return r;
}

uint64_t
sub64(uint64_t a, uint64_t b, Flags *flags)
{
    Flags fl;
    uint64_t r = F64::add(a, b, true, fl);
    if (flags)
        flags->merge(fl);
    return r;
}

uint64_t
mul64(uint64_t a, uint64_t b, Flags *flags)
{
    Flags fl;
    uint64_t r = F64::mul(a, b, fl);
    if (flags)
        flags->merge(fl);
    return r;
}

uint64_t
div64(uint64_t a, uint64_t b, Flags *flags)
{
    Flags fl;
    uint64_t r = F64::div(a, b, fl);
    if (flags)
        flags->merge(fl);
    return r;
}

uint64_t
i2f64(int64_t v, Flags *flags)
{
    Flags fl;
    uint64_t r = F64::i2f(v, fl);
    if (flags)
        flags->merge(fl);
    return r;
}

int64_t
f2i64(uint64_t a, Flags *flags)
{
    Flags fl;
    int64_t r = F64::f2i(a, 64, fl);
    if (flags)
        flags->merge(fl);
    return r;
}

uint32_t
add32(uint32_t a, uint32_t b, Flags *flags)
{
    Flags fl;
    auto r = static_cast<uint32_t>(F32::add(a, b, false, fl));
    if (flags)
        flags->merge(fl);
    return r;
}

uint32_t
sub32(uint32_t a, uint32_t b, Flags *flags)
{
    Flags fl;
    auto r = static_cast<uint32_t>(F32::add(a, b, true, fl));
    if (flags)
        flags->merge(fl);
    return r;
}

uint32_t
mul32(uint32_t a, uint32_t b, Flags *flags)
{
    Flags fl;
    auto r = static_cast<uint32_t>(F32::mul(a, b, fl));
    if (flags)
        flags->merge(fl);
    return r;
}

uint32_t
div32(uint32_t a, uint32_t b, Flags *flags)
{
    Flags fl;
    auto r = static_cast<uint32_t>(F32::div(a, b, fl));
    if (flags)
        flags->merge(fl);
    return r;
}

uint32_t
i2f32(int32_t v, Flags *flags)
{
    Flags fl;
    auto r = static_cast<uint32_t>(F32::i2f(v, fl));
    if (flags)
        flags->merge(fl);
    return r;
}

int32_t
f2i32(uint32_t a, Flags *flags)
{
    Flags fl;
    auto r = static_cast<int32_t>(F32::f2i(a, 32, fl));
    if (flags)
        flags->merge(fl);
    return r;
}

bool
isNaN64(uint64_t a)
{
    return bits(a, 52, 11) == 0x7ff && bits(a, 0, 52) != 0;
}

bool
isInf64(uint64_t a)
{
    return bits(a, 52, 11) == 0x7ff && bits(a, 0, 52) == 0;
}

bool
isZero64(uint64_t a)
{
    // FTZ semantics: subnormals count as zero.
    return bits(a, 52, 11) == 0;
}

bool
isSubnormal64(uint64_t a)
{
    return bits(a, 52, 11) == 0 && bits(a, 0, 52) != 0;
}

bool
isNaN32(uint32_t a)
{
    return bits(a, 23, 8) == 0xff && bits(a, 0, 23) != 0;
}

bool
isInf32(uint32_t a)
{
    return bits(a, 23, 8) == 0xff && bits(a, 0, 23) == 0;
}

bool
eq64(uint64_t a, uint64_t b, Flags *flags)
{
    (void)flags;
    if (isNaN64(a) || isNaN64(b))
        return false;
    if (isZero64(a) && isZero64(b))
        return true;
    return a == b;
}

namespace {

/** Total order key for non-NaN doubles: flips the negative range so the
 * keys compare correctly as unsigned integers. */
uint64_t
orderKey64(uint64_t a)
{
    if (bit(a, 63))
        return ~a;
    return a | (1ULL << 63);
}

} // namespace

bool
lt64(uint64_t a, uint64_t b, Flags *flags)
{
    if (isNaN64(a) || isNaN64(b)) {
        if (flags)
            flags->invalid = true;
        return false;
    }
    if (isZero64(a) && isZero64(b))
        return false;
    return orderKey64(a) < orderKey64(b);
}

bool
le64(uint64_t a, uint64_t b, Flags *flags)
{
    if (isNaN64(a) || isNaN64(b)) {
        if (flags)
            flags->invalid = true;
        return false;
    }
    if (isZero64(a) && isZero64(b))
        return true;
    return orderKey64(a) <= orderKey64(b);
}

uint64_t
fromDouble(double d)
{
    uint64_t r;
    std::memcpy(&r, &d, sizeof(r));
    return r;
}

double
toDouble(uint64_t bits)
{
    double d;
    std::memcpy(&d, &bits, sizeof(d));
    return d;
}

uint32_t
fromFloat(float f)
{
    uint32_t r;
    std::memcpy(&r, &f, sizeof(r));
    return r;
}

float
toFloat(uint32_t bits)
{
    float f;
    std::memcpy(&f, &bits, sizeof(f));
    return f;
}

uint32_t
narrow64to32(uint64_t a, Flags *flags)
{
    Flags fl;
    uint32_t r;
    if (isNaN64(a)) {
        r = qnan32;
    } else if (isInf64(a)) {
        r = static_cast<uint32_t>((bit(a, 63) ? 0x80000000u : 0u) |
                                  0x7f800000u);
    } else if (isZero64(a)) {
        r = bit(a, 63) ? 0x80000000u : 0u;
    } else {
        bool sign = bit(a, 63);
        int exp = static_cast<int>(bits(a, 52, 11)) - 1023;
        uint64_t sig = (1ULL << 52) | bits(a, 0, 52);
        // Reduce 52 -> 23 mantissa bits keeping 3 guard bits + sticky.
        uint64_t sig32 = sig >> 26;
        if (sig & lowMask(26))
            sig32 |= 1;
        // sig32 now has implied 1 at bit 26 == 23+3. Round/pack via F32.
        r = static_cast<uint32_t>(
            F32::roundPack(sign, exp, sig32, fl));
    }
    if (flags)
        flags->merge(fl);
    return r;
}

uint64_t
widen32to64(uint32_t a)
{
    if (isNaN32(a))
        return qnan64;
    bool sign = bit(a, 31);
    uint64_t s = static_cast<uint64_t>(sign) << 63;
    if (isInf32(a))
        return s | 0x7ff0000000000000ULL;
    uint64_t e = bits(a, 23, 8);
    uint64_t m = bits(a, 0, 23);
    if (e == 0)
        return s; // zero or subnormal (FTZ)
    uint64_t exp = e - 127 + 1023;
    return s | (exp << 52) | (m << 29);
}

} // namespace tea::sf
