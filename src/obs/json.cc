#include "obs/json.hh"

#include <cctype>
#include <cmath>
#include <cstdio>
#include <cstring>

namespace tea::obs::json {

const Value *
Value::find(const std::string &key) const
{
    if (kind_ != Kind::Object)
        return nullptr;
    for (const auto &[k, v] : object_)
        if (k == key)
            return &v;
    return nullptr;
}

std::string
quote(const std::string &s)
{
    std::string out;
    out.reserve(s.size() + 2);
    out.push_back('"');
    for (unsigned char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\r': out += "\\r"; break;
          case '\t': out += "\\t"; break;
          default:
            if (c < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out.push_back(static_cast<char>(c));
            }
        }
    }
    out.push_back('"');
    return out;
}

namespace {

void
newlineIndent(std::string &out, int indent, int depth)
{
    if (indent < 0)
        return;
    out.push_back('\n');
    out.append(static_cast<size_t>(indent) * depth, ' ');
}

} // namespace

void
Value::dumpTo(std::string &out, int indent, int depth) const
{
    switch (kind_) {
      case Kind::Null:
        out += "null";
        break;
      case Kind::Bool:
        out += bool_ ? "true" : "false";
        break;
      case Kind::Int: {
        char buf[32];
        std::snprintf(buf, sizeof(buf), "%lld",
                      static_cast<long long>(int_));
        out += buf;
        break;
      }
      case Kind::Double: {
        if (!std::isfinite(double_)) {
            out += "null"; // JSON has no Inf/NaN
            break;
        }
        char buf[40];
        std::snprintf(buf, sizeof(buf), "%.17g", double_);
        out += buf;
        break;
      }
      case Kind::String:
        out += quote(string_);
        break;
      case Kind::Array: {
        out.push_back('[');
        for (size_t i = 0; i < array_.size(); ++i) {
            if (i)
                out.push_back(',');
            newlineIndent(out, indent, depth + 1);
            array_[i].dumpTo(out, indent, depth + 1);
        }
        if (!array_.empty())
            newlineIndent(out, indent, depth);
        out.push_back(']');
        break;
      }
      case Kind::Object: {
        out.push_back('{');
        for (size_t i = 0; i < object_.size(); ++i) {
            if (i)
                out.push_back(',');
            newlineIndent(out, indent, depth + 1);
            out += quote(object_[i].first);
            out.push_back(':');
            if (indent >= 0)
                out.push_back(' ');
            object_[i].second.dumpTo(out, indent, depth + 1);
        }
        if (!object_.empty())
            newlineIndent(out, indent, depth);
        out.push_back('}');
        break;
      }
    }
}

std::string
Value::dump(int indent) const
{
    std::string out;
    dumpTo(out, indent, 0);
    return out;
}

namespace {

struct Parser
{
    const char *p;
    const char *end;

    void skipWs()
    {
        while (p < end && (*p == ' ' || *p == '\t' || *p == '\n' ||
                           *p == '\r'))
            ++p;
    }

    bool literal(const char *lit)
    {
        size_t n = std::strlen(lit);
        if (static_cast<size_t>(end - p) < n ||
            std::strncmp(p, lit, n) != 0)
            return false;
        p += n;
        return true;
    }

    bool parseString(std::string &out)
    {
        if (p >= end || *p != '"')
            return false;
        ++p;
        out.clear();
        while (p < end && *p != '"') {
            char c = *p++;
            if (c != '\\') {
                out.push_back(c);
                continue;
            }
            if (p >= end)
                return false;
            char e = *p++;
            switch (e) {
              case '"': out.push_back('"'); break;
              case '\\': out.push_back('\\'); break;
              case '/': out.push_back('/'); break;
              case 'b': out.push_back('\b'); break;
              case 'f': out.push_back('\f'); break;
              case 'n': out.push_back('\n'); break;
              case 'r': out.push_back('\r'); break;
              case 't': out.push_back('\t'); break;
              case 'u': {
                if (end - p < 4)
                    return false;
                unsigned cp = 0;
                for (int i = 0; i < 4; ++i) {
                    char h = *p++;
                    cp <<= 4;
                    if (h >= '0' && h <= '9')
                        cp |= static_cast<unsigned>(h - '0');
                    else if (h >= 'a' && h <= 'f')
                        cp |= static_cast<unsigned>(h - 'a' + 10);
                    else if (h >= 'A' && h <= 'F')
                        cp |= static_cast<unsigned>(h - 'A' + 10);
                    else
                        return false;
                }
                // Minimal UTF-8 encode (no surrogate-pair handling —
                // obs output never emits any).
                if (cp < 0x80) {
                    out.push_back(static_cast<char>(cp));
                } else if (cp < 0x800) {
                    out.push_back(static_cast<char>(0xC0 | (cp >> 6)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3F)));
                } else {
                    out.push_back(static_cast<char>(0xE0 | (cp >> 12)));
                    out.push_back(
                        static_cast<char>(0x80 | ((cp >> 6) & 0x3F)));
                    out.push_back(
                        static_cast<char>(0x80 | (cp & 0x3F)));
                }
                break;
              }
              default:
                return false;
            }
        }
        if (p >= end)
            return false;
        ++p; // closing quote
        return true;
    }

    bool parseValue(Value &out)
    {
        skipWs();
        if (p >= end)
            return false;
        switch (*p) {
          case 'n':
            if (!literal("null"))
                return false;
            out = Value();
            return true;
          case 't':
            if (!literal("true"))
                return false;
            out = Value(true);
            return true;
          case 'f':
            if (!literal("false"))
                return false;
            out = Value(false);
            return true;
          case '"': {
            std::string s;
            if (!parseString(s))
                return false;
            out = Value(std::move(s));
            return true;
          }
          case '[': {
            ++p;
            Array a;
            skipWs();
            if (p < end && *p == ']') {
                ++p;
                out = Value(std::move(a));
                return true;
            }
            for (;;) {
                Value v;
                if (!parseValue(v))
                    return false;
                a.push_back(std::move(v));
                skipWs();
                if (p >= end)
                    return false;
                if (*p == ',') {
                    ++p;
                    continue;
                }
                if (*p == ']') {
                    ++p;
                    out = Value(std::move(a));
                    return true;
                }
                return false;
            }
          }
          case '{': {
            ++p;
            Object o;
            skipWs();
            if (p < end && *p == '}') {
                ++p;
                out = Value(std::move(o));
                return true;
            }
            for (;;) {
                skipWs();
                std::string key;
                if (!parseString(key))
                    return false;
                skipWs();
                if (p >= end || *p != ':')
                    return false;
                ++p;
                Value v;
                if (!parseValue(v))
                    return false;
                o.emplace_back(std::move(key), std::move(v));
                skipWs();
                if (p >= end)
                    return false;
                if (*p == ',') {
                    ++p;
                    continue;
                }
                if (*p == '}') {
                    ++p;
                    out = Value(std::move(o));
                    return true;
                }
                return false;
            }
          }
          default: {
            // Number: [-]int[.frac][e...]
            const char *start = p;
            if (*p == '-')
                ++p;
            bool digits = false;
            while (p < end && std::isdigit(static_cast<unsigned char>(*p))) {
                ++p;
                digits = true;
            }
            if (!digits)
                return false;
            bool isDouble = false;
            if (p < end && *p == '.') {
                isDouble = true;
                ++p;
                if (p >= end ||
                    !std::isdigit(static_cast<unsigned char>(*p)))
                    return false;
                while (p < end &&
                       std::isdigit(static_cast<unsigned char>(*p)))
                    ++p;
            }
            if (p < end && (*p == 'e' || *p == 'E')) {
                isDouble = true;
                ++p;
                if (p < end && (*p == '+' || *p == '-'))
                    ++p;
                if (p >= end ||
                    !std::isdigit(static_cast<unsigned char>(*p)))
                    return false;
                while (p < end &&
                       std::isdigit(static_cast<unsigned char>(*p)))
                    ++p;
            }
            std::string tok(start, p);
            if (isDouble)
                out = Value(std::strtod(tok.c_str(), nullptr));
            else
                out = Value(static_cast<int64_t>(
                    std::strtoll(tok.c_str(), nullptr, 10)));
            return true;
          }
        }
    }
};

} // namespace

std::optional<Value>
parse(const std::string &text)
{
    Parser parser{text.data(), text.data() + text.size()};
    Value v;
    if (!parser.parseValue(v))
        return std::nullopt;
    parser.skipWs();
    if (parser.p != parser.end)
        return std::nullopt; // trailing garbage
    return v;
}

} // namespace tea::obs::json
