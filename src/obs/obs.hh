/**
 * @file
 * Observability facade: the metric catalog, environment wiring, and
 * the at-exit exporters.
 *
 * The layer has three pieces (all deterministic-safe — observation
 * only, never campaign control flow, RNG, or merge order):
 *
 *  - **Metrics** (obs/metrics.hh): counters/gauges/histograms exported
 *    as JSON + Prometheus text when `REPRO_METRICS=<path>` (or
 *    `--metrics <path>` on the bench binaries) is set.
 *  - **Phase tracing** (obs/trace.hh): nested spans dumped as Chrome
 *    trace_event JSON when `REPRO_TRACE=<path>` / `--trace <path>`.
 *  - **Run manifests** (obs/manifest.hh): per-grid-cell provenance
 *    JSON written into the cache dir whenever caching is on.
 *
 * Every metric family name lives in obs::metric:: below; the catalog
 * is the single source of truth that scripts/check_docs.sh greps
 * against docs/OBSERVABILITY.md, so adding a metric without
 * documenting it fails ctest.
 */

#ifndef TEA_OBS_OBS_HH
#define TEA_OBS_OBS_HH

#include <string>

namespace tea::obs {

namespace metric {

// ---- injection engine ---------------------------------------------
inline constexpr const char *kInjectRuns = "tea_inject_runs_total";
inline constexpr const char *kInjectOutcomes =
    "tea_inject_outcomes_total";
inline constexpr const char *kInjectRetries =
    "tea_inject_retries_total";
inline constexpr const char *kInjectReplays =
    "tea_inject_replays_total";
inline constexpr const char *kInjectRunMs = "tea_inject_run_ms";
// ---- multi-core injection (McSim) ----------------------------------
inline constexpr const char *kMcOutcomes = "tea_mc_outcomes_total";
inline constexpr const char *kMcInvalidations =
    "tea_mc_invalidations_total";
inline constexpr const char *kMcC2cTransfers =
    "tea_mc_c2c_transfers_total";
inline constexpr const char *kMcL2Misses = "tea_mc_l2_misses_total";
inline constexpr const char *kMcCrossReads =
    "tea_mc_cross_reads_total";
inline constexpr const char *kMcOverwriteMasked =
    "tea_mc_overwrite_masked_total";
inline constexpr const char *kMcSpawns = "tea_mc_spawns_total";
inline constexpr const char *kMcBarriers = "tea_mc_barriers_total";
// ---- DTA characterization -----------------------------------------
inline constexpr const char *kDtaShards = "tea_dta_shards_total";
inline constexpr const char *kDtaShardRetries =
    "tea_dta_shard_retries_total";
inline constexpr const char *kDtaShardsDropped =
    "tea_dta_shards_dropped_total";
inline constexpr const char *kDtaOps = "tea_dta_ops_total";
inline constexpr const char *kDtaShardMs = "tea_dta_shard_ms";
inline constexpr const char *kDtaLaneBatches =
    "tea_dta_lane_batches_total";
inline constexpr const char *kDtaLaneFallbackOps =
    "tea_dta_lane_fallback_ops_total";
inline constexpr const char *kDtaCompileMs = "tea_dta_compile_ms";
inline constexpr const char *kDtaBackend = "tea_dta_backend";
// ---- importance sampling / surrogate -------------------------------
inline constexpr const char *kIsRuns = "tea_is_runs_total";
inline constexpr const char *kIsEssRatio = "tea_is_ess_ratio";
inline constexpr const char *kSurrogateTrainMs =
    "tea_surrogate_train_ms";
inline constexpr const char *kSurrogateAuc = "tea_surrogate_auc";
inline constexpr const char *kSurrogateCorpusOps =
    "tea_surrogate_corpus_ops_total";
// ---- adaptive estimation ------------------------------------------
inline constexpr const char *kStatsRounds = "tea_stats_rounds_total";
inline constexpr const char *kStatsEarlyStops =
    "tea_stats_early_stops_total";
inline constexpr const char *kStatsAllocatedTrials =
    "tea_stats_allocated_trials_total";
inline constexpr const char *kStatsTrialsSaved =
    "tea_stats_trials_saved_total";
// ---- durability ----------------------------------------------------
inline constexpr const char *kJournalAppends =
    "tea_journal_appends_total";
inline constexpr const char *kCacheHits = "tea_cache_hits_total";
inline constexpr const char *kCacheMisses = "tea_cache_misses_total";
inline constexpr const char *kCacheCorrupt = "tea_cache_corrupt_total";
inline constexpr const char *kCacheSingleflight =
    "tea_cache_singleflight_total";
// ---- watchdogs -----------------------------------------------------
inline constexpr const char *kWatchdogDeadline =
    "tea_watchdog_deadline_total";
inline constexpr const char *kWatchdogCancelled =
    "tea_watchdog_cancelled_total";
// ---- fleet (multi-process job farm) --------------------------------
// Lease lifecycle metrics are split by role: workers count the leases
// they acquire and renew, the coordinator counts expiries, reissues,
// poisonings, and worker restarts — each process exports its own view.
inline constexpr const char *kFleetLeasesGranted =
    "tea_fleet_leases_granted_total";
inline constexpr const char *kFleetLeaseRenewals =
    "tea_fleet_lease_renewals_total";
inline constexpr const char *kFleetLeasesExpired =
    "tea_fleet_leases_expired_total";
inline constexpr const char *kFleetLeasesReissued =
    "tea_fleet_leases_reissued_total";
inline constexpr const char *kFleetUnitsCompleted =
    "tea_fleet_units_completed_total";
inline constexpr const char *kFleetUnitsPoisoned =
    "tea_fleet_units_poisoned_total";
inline constexpr const char *kFleetWorkerRestarts =
    "tea_fleet_worker_restarts_total";
inline constexpr const char *kFleetUnitMs = "tea_fleet_unit_ms";
// ---- service daemon (tea-daemon) -----------------------------------
// Connection- and frame-level counters, the admission pipeline
// (submitted / deduplicated / rejected / completed / cancelled), the
// scheduler's live state gauges, and the per-campaign latency
// histograms. All daemon-side: tea-client is stateless.
inline constexpr const char *kDaemonConnections =
    "tea_daemon_connections_total";
inline constexpr const char *kDaemonBadFrames =
    "tea_daemon_bad_frames_total";
inline constexpr const char *kDaemonRequests =
    "tea_daemon_requests_total";
inline constexpr const char *kDaemonSubmitted =
    "tea_daemon_campaigns_submitted_total";
inline constexpr const char *kDaemonDeduped =
    "tea_daemon_campaigns_deduped_total";
inline constexpr const char *kDaemonRejected =
    "tea_daemon_campaigns_rejected_total";
inline constexpr const char *kDaemonCompleted =
    "tea_daemon_campaigns_completed_total";
inline constexpr const char *kDaemonCancelled =
    "tea_daemon_campaigns_cancelled_total";
inline constexpr const char *kDaemonCellsStreamed =
    "tea_daemon_cells_streamed_total";
inline constexpr const char *kDaemonQueueDepth =
    "tea_daemon_queue_depth";
inline constexpr const char *kDaemonActive =
    "tea_daemon_campaigns_active";
inline constexpr const char *kDaemonState = "tea_daemon_state";
inline constexpr const char *kDaemonCampaignMs =
    "tea_daemon_campaign_ms";
inline constexpr const char *kDaemonQueueWaitMs =
    "tea_daemon_queue_wait_ms";
// ---- grid / process -----------------------------------------------
inline constexpr const char *kCampaignCells =
    "tea_campaign_cells_total";
inline constexpr const char *kManifestsWritten =
    "tea_manifests_written_total";
inline constexpr const char *kPoolTasks = "tea_pool_tasks_total";
inline constexpr const char *kPoolIdleNs = "tea_pool_idle_ns_total";
inline constexpr const char *kTraceDropped =
    "tea_trace_spans_dropped_total";

} // namespace metric

/**
 * Read REPRO_TRACE / REPRO_METRICS and arm the tracer/exporter
 * accordingly; registers one at-exit flush. Idempotent — the Toolflow
 * constructor and every bench/example entry point call it, whichever
 * runs first wins.
 */
void configureFromEnv();

/** CLI overrides (`--trace <path>` / `--metrics <path>`). */
void setTracePath(const std::string &path);
void setMetricsPath(const std::string &path);

/** Paths currently armed ("" = disabled). */
const std::string &tracePath();
const std::string &metricsPath();

/**
 * Write everything now: metrics JSON to metricsPath(), Prometheus text
 * to metricsPath()+".prom", the span ring to tracePath(). Safe to call
 * repeatedly; the at-exit hook calls it last.
 */
void flush();

/** `git describe` of the built tree (baked in at configure time). */
const char *gitDescribe();

} // namespace tea::obs

#endif // TEA_OBS_OBS_HH
