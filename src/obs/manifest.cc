#include "obs/manifest.hh"

#include <cstdio>
#include <ctime>
#include <fstream>
#include <sstream>

#include "obs/metrics.hh"
#include "obs/obs.hh"
#include "util/fsatomic.hh"

namespace tea::obs {

namespace {
constexpr const char *kSchema = "tea-manifest-v1";
} // namespace

std::string
isoTimestamp()
{
    std::time_t now = std::time(nullptr);
    std::tm tm{};
    gmtime_r(&now, &tm);
    char buf[32];
    std::strftime(buf, sizeof(buf), "%Y-%m-%dT%H:%M:%SZ", &tm);
    return buf;
}

json::Value
RunManifest::toJson() const
{
    json::Object o;
    o.emplace_back("schema", kSchema);
    o.emplace_back("workload", workload);
    o.emplace_back("model", model);
    o.emplace_back("modelDetail", modelDetail);
    o.emplace_back("vr", vrFrac);
    o.emplace_back("seed", seed);
    o.emplace_back("runsPerCell", runsPerCell);
    o.emplace_back("workloadScale", workloadScale);
    o.emplace_back("threads", static_cast<uint64_t>(threads));
    o.emplace_back("identity", identity);
    o.emplace_back("git", gitDescribe);
    o.emplace_back("journal", journalPath);
    o.emplace_back("gridCsv", gridCsvPath);
    o.emplace_back("written", wallTime);
    json::Object outcome;
    outcome.emplace_back("runs", runs);
    outcome.emplace_back("masked", masked);
    outcome.emplace_back("sdc", sdc);
    outcome.emplace_back("crash", crash);
    outcome.emplace_back("timeout", timeout);
    outcome.emplace_back("engineFault", engineFault);
    outcome.emplace_back("retries", retries);
    outcome.emplace_back("replayedRuns", replayedRuns);
    outcome.emplace_back("injectedErrors", injectedErrors);
    outcome.emplace_back("committedInstructions",
                         committedInstructions);
    outcome.emplace_back("interrupted", interrupted);
    o.emplace_back("outcome", std::move(outcome));
    o.emplace_back("metrics", metrics);
    return json::Value(std::move(o));
}

std::optional<RunManifest>
RunManifest::fromJson(const json::Value &v)
{
    const json::Value *schema = v.find("schema");
    if (!schema || schema->asString() != kSchema)
        return std::nullopt;
    RunManifest m;
    auto str = [&](const char *key, std::string &dst) {
        if (const json::Value *f = v.find(key))
            dst = f->asString();
    };
    str("workload", m.workload);
    str("model", m.model);
    str("modelDetail", m.modelDetail);
    str("identity", m.identity);
    str("git", m.gitDescribe);
    str("journal", m.journalPath);
    str("gridCsv", m.gridCsvPath);
    str("written", m.wallTime);
    if (const json::Value *f = v.find("vr"))
        m.vrFrac = f->asDouble();
    if (const json::Value *f = v.find("seed"))
        m.seed = static_cast<uint64_t>(f->asInt());
    if (const json::Value *f = v.find("runsPerCell"))
        m.runsPerCell = static_cast<int>(f->asInt());
    if (const json::Value *f = v.find("workloadScale"))
        m.workloadScale = static_cast<int>(f->asInt());
    if (const json::Value *f = v.find("threads"))
        m.threads = static_cast<unsigned>(f->asInt());
    if (const json::Value *outcome = v.find("outcome")) {
        auto u64 = [&](const char *key, uint64_t &dst) {
            if (const json::Value *f = outcome->find(key))
                dst = static_cast<uint64_t>(f->asInt());
        };
        u64("runs", m.runs);
        u64("masked", m.masked);
        u64("sdc", m.sdc);
        u64("crash", m.crash);
        u64("timeout", m.timeout);
        u64("engineFault", m.engineFault);
        u64("retries", m.retries);
        u64("replayedRuns", m.replayedRuns);
        u64("injectedErrors", m.injectedErrors);
        u64("committedInstructions", m.committedInstructions);
        if (const json::Value *f = outcome->find("interrupted"))
            m.interrupted = f->asBool();
    }
    if (const json::Value *f = v.find("metrics"))
        m.metrics = *f;
    return m;
}

bool
writeRunManifest(const std::string &path, RunManifest m)
{
    if (m.gitDescribe.empty())
        m.gitDescribe = gitDescribe();
    if (m.wallTime.empty())
        m.wallTime = isoTimestamp();
    if (m.metrics.isNull())
        m.metrics = Registry::global().snapshot();
    // Atomic: a zombie fleet worker and its reissued replacement can
    // both publish the same cell's manifest; each write lands whole.
    return atomicWriteFile(path, m.toJson().dump(2) + "\n");
}

std::optional<RunManifest>
readRunManifest(const std::string &path)
{
    std::ifstream in(path);
    if (!in)
        return std::nullopt;
    std::ostringstream text;
    text << in.rdbuf();
    auto parsed = json::parse(text.str());
    if (!parsed)
        return std::nullopt;
    return RunManifest::fromJson(*parsed);
}

} // namespace tea::obs
