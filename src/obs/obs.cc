#include "obs/obs.hh"

#include <cstdlib>
#include <fstream>
#include <mutex>

#include "obs/metrics.hh"
#include "obs/trace.hh"
#include "util/logging.hh"
#include "util/threadpool.hh"

#ifndef TEA_GIT_DESCRIBE
#define TEA_GIT_DESCRIBE "unknown"
#endif

namespace tea::obs {

namespace {

std::mutex configMutex;
std::string gTracePath;
std::string gMetricsPath;
bool gAtExitRegistered = false;

void
registerFlushAtExit()
{
    if (gAtExitRegistered)
        return;
    gAtExitRegistered = true;
    std::atexit([] { flush(); });
}

} // namespace

const char *
gitDescribe()
{
    return TEA_GIT_DESCRIBE;
}

void
setTracePath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(configMutex);
    gTracePath = path;
    if (!gTracePath.empty()) {
        Tracer::global().enable();
        registerFlushAtExit();
    }
}

void
setMetricsPath(const std::string &path)
{
    std::lock_guard<std::mutex> lock(configMutex);
    gMetricsPath = path;
    if (!gMetricsPath.empty())
        registerFlushAtExit();
}

const std::string &
tracePath()
{
    return gTracePath;
}

const std::string &
metricsPath()
{
    return gMetricsPath;
}

void
configureFromEnv()
{
    static std::once_flag once;
    std::call_once(once, [] {
        if (const char *trace = std::getenv("REPRO_TRACE");
            trace && trace[0] != '\0' && gTracePath.empty())
            setTracePath(trace);
        if (const char *metrics = std::getenv("REPRO_METRICS");
            metrics && metrics[0] != '\0' && gMetricsPath.empty())
            setMetricsPath(metrics);
    });
}

void
flush()
{
    // Late-bound gauges: sampled at export, not maintained on hot
    // paths (tea_util stays free of any obs dependency).
    Registry &reg = Registry::global();
    reg.gauge(metric::kPoolTasks, "",
              "tasks executed across all thread pools")
        .set(static_cast<int64_t>(ThreadPool::tasksExecuted()));
    reg.gauge(metric::kPoolIdleNs, "",
              "worker nanoseconds spent waiting for work")
        .set(static_cast<int64_t>(ThreadPool::idleNanos()));
    reg.gauge(metric::kTraceDropped, "",
              "trace spans overwritten by ring wrap-around")
        .set(static_cast<int64_t>(Tracer::global().dropped()));

    std::string trace, metrics;
    {
        std::lock_guard<std::mutex> lock(configMutex);
        trace = gTracePath;
        metrics = gMetricsPath;
    }
    if (!metrics.empty()) {
        std::ofstream json(metrics, std::ios::trunc);
        if (json) {
            json::Value snap = reg.snapshot();
            snap.asObject().emplace(
                snap.asObject().begin() + 1,
                std::make_pair(std::string("git"),
                               json::Value(gitDescribe())));
            json << snap.dump(2) << "\n";
        } else {
            logWarn("cannot write metrics export '%s'",
                    metrics.c_str());
        }
        std::ofstream prom(metrics + ".prom", std::ios::trunc);
        if (prom)
            prom << reg.renderPrometheus();
        else
            logWarn("cannot write metrics export '%s.prom'",
                    metrics.c_str());
    }
    if (!trace.empty() && Tracer::global().enabled()) {
        if (!Tracer::global().dumpTo(trace))
            logWarn("cannot write trace '%s'", trace.c_str());
    }
}

} // namespace tea::obs
