/**
 * @file
 * Minimal JSON value model for the observability layer.
 *
 * Everything obs emits (metric exports, run manifests, trace files) is
 * JSON, and the tests must be able to re-read those artifacts to prove
 * round-trips and well-formedness without an external dependency. This
 * is a deliberately small implementation: ordered objects (so emitted
 * files diff stably), UTF-8 passed through verbatim, numbers as double
 * or int64, no comments, no trailing commas.
 */

#ifndef TEA_OBS_JSON_HH
#define TEA_OBS_JSON_HH

#include <cstdint>
#include <memory>
#include <optional>
#include <string>
#include <utility>
#include <vector>

namespace tea::obs::json {

class Value;

using Array = std::vector<Value>;
/** Insertion-ordered object: emitted files diff stably. */
using Object = std::vector<std::pair<std::string, Value>>;

class Value
{
  public:
    enum class Kind
    {
        Null,
        Bool,
        Int,
        Double,
        String,
        Array,
        Object,
    };

    Value() : kind_(Kind::Null) {}
    Value(std::nullptr_t) : kind_(Kind::Null) {}
    Value(bool b) : kind_(Kind::Bool), bool_(b) {}
    Value(int64_t i) : kind_(Kind::Int), int_(i) {}
    Value(int i) : kind_(Kind::Int), int_(i) {}
    Value(uint64_t u) : kind_(Kind::Int), int_(static_cast<int64_t>(u)) {}
    Value(double d) : kind_(Kind::Double), double_(d) {}
    Value(std::string s) : kind_(Kind::String), string_(std::move(s)) {}
    Value(const char *s) : kind_(Kind::String), string_(s) {}
    Value(Array a) : kind_(Kind::Array), array_(std::move(a)) {}
    Value(Object o) : kind_(Kind::Object), object_(std::move(o)) {}

    Kind kind() const { return kind_; }
    bool isNull() const { return kind_ == Kind::Null; }
    bool isNumber() const
    {
        return kind_ == Kind::Int || kind_ == Kind::Double;
    }

    bool asBool() const { return bool_; }
    int64_t asInt() const
    {
        return kind_ == Kind::Double ? static_cast<int64_t>(double_)
                                     : int_;
    }
    double asDouble() const
    {
        return kind_ == Kind::Int ? static_cast<double>(int_) : double_;
    }
    const std::string &asString() const { return string_; }
    const Array &asArray() const { return array_; }
    const Object &asObject() const { return object_; }
    Array &asArray() { return array_; }
    Object &asObject() { return object_; }

    /** Object member lookup; nullptr when absent or not an object. */
    const Value *find(const std::string &key) const;

    /** Append a member (object kinds only; asserts nothing, trusts use). */
    void set(std::string key, Value v)
    {
        object_.emplace_back(std::move(key), std::move(v));
    }

    /** Serialize. indent < 0 emits compact one-line JSON. */
    std::string dump(int indent = -1) const;

  private:
    void dumpTo(std::string &out, int indent, int depth) const;

    Kind kind_;
    bool bool_ = false;
    int64_t int_ = 0;
    double double_ = 0.0;
    std::string string_;
    Array array_;
    Object object_;
};

/** Escape a string into a JSON string literal (with quotes). */
std::string quote(const std::string &s);

/**
 * Parse a complete JSON document. Returns nullopt on any syntax error
 * (including trailing garbage) — used by tests to prove emitted
 * artifacts are well-formed.
 */
std::optional<Value> parse(const std::string &text);

} // namespace tea::obs::json

#endif // TEA_OBS_JSON_HH
