/**
 * @file
 * Phase tracer: nested span records in a fixed in-memory ring buffer,
 * dumpable as Chrome trace_event JSON.
 *
 * A Span is an RAII scope marker. The hierarchy mirrors the toolflow:
 *
 *     toolflow phase (characterize / grid)      cat "toolflow"
 *       └─ grid cell (workload x model x VR)    cat "grid"
 *            └─ DTA shard / injection run       cat "dta" / "inject"
 *
 * Chrome/Perfetto reconstruct the nesting from (tid, ts, dur)
 * containment of complete ("ph":"X") events, so recording one fixed-
 * size record per finished span — no open/close pairing, no allocation
 * — is enough.
 *
 * Cost model: when tracing is disabled (REPRO_TRACE unset) a Span
 * construction is one relaxed atomic load and no clock read. When
 * enabled, a span costs two steady_clock reads and one ring-buffer
 * slot claim. The ring overwrites its oldest records when full (the
 * tail of a campaign is usually the interesting part); the number of
 * overwritten records is reported in the dump and as a metric.
 *
 * Determinism: spans observe wall-clock but never influence campaign
 * control flow, RNG streams, or merge order. Timestamps exist only in
 * the trace output.
 */

#ifndef TEA_OBS_TRACE_HH
#define TEA_OBS_TRACE_HH

#include <atomic>
#include <cstdint>
#include <cstring>
#include <string>
#include <string_view>
#include <vector>

namespace tea::obs {

class Tracer
{
  public:
    /** One finished span. Fixed size; names are copied, not pointed. */
    struct Record
    {
        char name[48];
        const char *cat;   ///< static string; never freed
        uint64_t tsNs;     ///< start, ns since process epoch
        uint64_t durNs;    ///< duration in ns
        int64_t arg;       ///< span argument (run/shard index), -1 none
        uint32_t tid;      ///< small stable per-thread id
    };

    static Tracer &global();

    /**
     * Arm the tracer with a ring of `capacity` records. Re-arming
     * replaces the ring; call before spawning worker threads.
     */
    void enable(size_t capacity = kDefaultCapacity);
    bool enabled() const
    {
        return enabled_.load(std::memory_order_relaxed);
    }

    void record(std::string_view name, const char *cat, uint64_t tsNs,
                uint64_t durNs, int64_t arg);

    /** Spans lost to ring wrap-around so far. */
    uint64_t dropped() const;
    /** Total spans recorded (including overwritten ones). */
    uint64_t recorded() const
    {
        return cursor_.load(std::memory_order_relaxed);
    }

    /**
     * Write the ring as Chrome trace_event JSON (the object form, with
     * metadata). Loadable in chrome://tracing and ui.perfetto.dev.
     * Returns false on I/O failure.
     */
    bool dumpTo(const std::string &path) const;

    /** Nanoseconds since the process-wide trace epoch. */
    static uint64_t nowNs();

    /** Small stable id for the calling thread (0 = first seen). */
    static uint32_t threadId();

    /** Drop all records; keeps the ring and the armed state. */
    void clear();

    static constexpr size_t kDefaultCapacity = 1 << 16;

  private:
    std::atomic<bool> enabled_{false};
    std::atomic<uint64_t> cursor_{0};
    std::vector<Record> ring_;
};

/** RAII span; records itself into Tracer::global() on destruction. */
class Span
{
  public:
    Span(std::string_view name, const char *cat, int64_t arg = -1)
    {
        if (!Tracer::global().enabled())
            return;
        active_ = true;
        size_t n = std::min(name.size(), sizeof(name_) - 1);
        std::memcpy(name_, name.data(), n);
        name_[n] = '\0';
        cat_ = cat;
        arg_ = arg;
        startNs_ = Tracer::nowNs();
    }
    ~Span()
    {
        if (active_)
            Tracer::global().record(name_, cat_, startNs_,
                                    Tracer::nowNs() - startNs_, arg_);
    }
    Span(const Span &) = delete;
    Span &operator=(const Span &) = delete;

  private:
    char name_[48];
    const char *cat_ = "";
    uint64_t startNs_ = 0;
    int64_t arg_ = -1;
    bool active_ = false;
};

} // namespace tea::obs

#endif // TEA_OBS_TRACE_HH
