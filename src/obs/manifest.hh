/**
 * @file
 * Per-campaign run manifests.
 *
 * A manifest is one small JSON file written next to a campaign's cache
 * artifacts, capturing *exactly how they were produced*: workload,
 * model, VR level, seed, run count, thread count, git revision, the
 * journal identity string, outcome counts, and a snapshot of the
 * process metrics at write time. Any cached grid CSV can then be
 * audited back to its producing configuration without re-running
 * anything — the property the undervolted-SRAM fault-injection
 * literature calls out as the difference between a credible campaign
 * and a pile of numbers.
 *
 * Schema ("tea-manifest-v1") is documented in docs/OBSERVABILITY.md;
 * the round-trip is enforced by tests/obs/test_observability.cc.
 */

#ifndef TEA_OBS_MANIFEST_HH
#define TEA_OBS_MANIFEST_HH

#include <cstdint>
#include <optional>
#include <string>

#include "obs/json.hh"

namespace tea::obs {

struct RunManifest
{
    // ---- identity -------------------------------------------------
    std::string workload;
    std::string model;        ///< model kind name (DA/IA/WA)
    std::string modelDetail;  ///< ErrorModel::describe()
    double vrFrac = 0.0;
    uint64_t seed = 0;
    int runsPerCell = 0;
    int workloadScale = 1;
    unsigned threads = 0;
    std::string identity;     ///< the journal identity string
    // ---- provenance -----------------------------------------------
    std::string gitDescribe;
    std::string journalPath;
    std::string gridCsvPath;
    std::string wallTime;     ///< ISO-8601 UTC; obs output only
    // ---- outcome --------------------------------------------------
    uint64_t runs = 0;
    uint64_t masked = 0, sdc = 0, crash = 0, timeout = 0;
    uint64_t engineFault = 0;
    uint64_t retries = 0;
    uint64_t replayedRuns = 0;
    uint64_t injectedErrors = 0;
    uint64_t committedInstructions = 0;
    bool interrupted = false;
    // ---- metrics snapshot (filled by writeRunManifest) ------------
    json::Value metrics;

    json::Value toJson() const;
    /** Parse a manifest back; nullopt on schema mismatch. */
    static std::optional<RunManifest> fromJson(const json::Value &v);
};

/**
 * Serialize `m` (with the current metric registry snapshot and wall
 * time attached) to `path`. Returns false on I/O failure.
 */
bool writeRunManifest(const std::string &path, RunManifest m);

/** Read + parse a manifest file. */
std::optional<RunManifest> readRunManifest(const std::string &path);

/** Current wall-clock as "YYYY-MM-DDTHH:MM:SSZ" (UTC). */
std::string isoTimestamp();

} // namespace tea::obs

#endif // TEA_OBS_MANIFEST_HH
