#include "obs/metrics.hh"

#include <algorithm>
#include <cmath>
#include <cstdio>

namespace tea::obs {

namespace detail {

unsigned
shardIndex()
{
    // One atomic round-robin assignment per thread: spreads workers
    // evenly across shards regardless of thread-id hashing quality.
    static std::atomic<unsigned> next{0};
    thread_local unsigned mine =
        next.fetch_add(1, std::memory_order_relaxed) %
        kCounterShards;
    return mine;
}

void
HistogramData::observe(double v)
{
    // Branchless-ish linear scan: bucket lists are short (~14) and the
    // call rate is per-run/per-shard, not per-op.
    size_t i = 0;
    while (i < bounds.size() && v > bounds[i])
        ++i;
    counts[i].fetch_add(1, std::memory_order_relaxed);
    count.fetch_add(1, std::memory_order_relaxed);
    double micro = v * 1e6;
    if (micro > 0)
        sumMicro.fetch_add(static_cast<uint64_t>(micro),
                           std::memory_order_relaxed);
}

void
HistogramData::reset()
{
    for (auto &c : counts)
        c.store(0, std::memory_order_relaxed);
    count.store(0, std::memory_order_relaxed);
    sumMicro.store(0, std::memory_order_relaxed);
}

} // namespace detail

const std::vector<double> &
latencyBucketsMs()
{
    static const std::vector<double> buckets = {
        0.5, 1, 2, 5, 10, 20, 50, 100, 200, 500, 1000, 2000, 5000,
        10000};
    return buckets;
}

Registry &
Registry::global()
{
    static Registry *registry = new Registry(); // never destroyed:
    // atexit exporters may run after static destructors would.
    return *registry;
}

Registry::Entry *
Registry::findOrCreate(Kind kind, const std::string &name,
                       const std::string &label,
                       const std::string &help)
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &e : entries_)
        if (e->name == name && e->label == label)
            return e.get();
    auto e = std::make_unique<Entry>();
    e->kind = kind;
    e->name = name;
    e->label = label;
    e->help = help;
    entries_.push_back(std::move(e));
    return entries_.back().get();
}

Counter
Registry::counter(const std::string &name, const std::string &label,
                  const std::string &help)
{
    Entry *e = findOrCreate(Kind::Counter, name, label, help);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!e->counter)
            e->counter = std::make_unique<detail::CounterData>();
    }
    return Counter(e->counter.get());
}

Gauge
Registry::gauge(const std::string &name, const std::string &label,
                const std::string &help)
{
    Entry *e = findOrCreate(Kind::Gauge, name, label, help);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!e->gauge)
            e->gauge = std::make_unique<detail::GaugeData>();
    }
    return Gauge(e->gauge.get());
}

Histogram
Registry::histogram(const std::string &name, std::vector<double> bounds,
                    const std::string &label, const std::string &help)
{
    Entry *e = findOrCreate(Kind::Histogram, name, label, help);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (!e->histogram) {
            auto h = std::make_unique<detail::HistogramData>();
            std::sort(bounds.begin(), bounds.end());
            h->bounds = std::move(bounds);
            h->counts =
                std::vector<std::atomic<uint64_t>>(h->bounds.size() + 1);
            e->histogram = std::move(h);
        }
    }
    return Histogram(e->histogram.get());
}

json::Value
Registry::snapshot() const
{
    json::Array metrics;
    std::lock_guard<std::mutex> lock(mutex_);
    for (const auto &e : entries_) {
        json::Object m;
        m.emplace_back("name", e->name);
        if (!e->label.empty())
            m.emplace_back("label", e->label);
        switch (e->kind) {
          case Kind::Counter:
            m.emplace_back("kind", "counter");
            m.emplace_back("value",
                           e->counter ? e->counter->total() : 0);
            break;
          case Kind::Gauge:
            m.emplace_back("kind", "gauge");
            m.emplace_back(
                "value",
                e->gauge ? e->gauge->value.load(
                               std::memory_order_relaxed)
                         : int64_t{0});
            break;
          case Kind::Histogram: {
            m.emplace_back("kind", "histogram");
            json::Array bounds, counts;
            if (e->histogram) {
                for (double b : e->histogram->bounds)
                    bounds.emplace_back(b);
                for (const auto &c : e->histogram->counts)
                    counts.emplace_back(
                        c.load(std::memory_order_relaxed));
                m.emplace_back(
                    "count", e->histogram->count.load(
                                 std::memory_order_relaxed));
                m.emplace_back(
                    "sum", static_cast<double>(
                               e->histogram->sumMicro.load(
                                   std::memory_order_relaxed)) /
                               1e6);
            }
            m.emplace_back("bounds", std::move(bounds));
            m.emplace_back("counts", std::move(counts));
            break;
          }
        }
        metrics.emplace_back(json::Object(std::move(m)));
    }
    json::Object root;
    root.emplace_back("schema", "tea-metrics-v1");
    root.emplace_back("metrics", std::move(metrics));
    return json::Value(std::move(root));
}

std::string
Registry::renderPrometheus() const
{
    std::string out;
    std::lock_guard<std::mutex> lock(mutex_);
    std::string lastHeader;
    auto header = [&](const Entry &e, const char *type) {
        if (e.name == lastHeader)
            return; // one HELP/TYPE per family
        lastHeader = e.name;
        if (!e.help.empty())
            out += "# HELP " + e.name + " " + e.help + "\n";
        out += "# TYPE " + e.name + " " + std::string(type) + "\n";
    };
    auto series = [&](const Entry &e, const std::string &value) {
        out += e.name;
        if (!e.label.empty())
            out += "{" + e.label + "}";
        out += " " + value + "\n";
    };
    char buf[64];
    for (const auto &e : entries_) {
        switch (e->kind) {
          case Kind::Counter:
            header(*e, "counter");
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(
                              e->counter ? e->counter->total() : 0));
            series(*e, buf);
            break;
          case Kind::Gauge:
            header(*e, "gauge");
            std::snprintf(
                buf, sizeof(buf), "%lld",
                static_cast<long long>(
                    e->gauge ? e->gauge->value.load(
                                   std::memory_order_relaxed)
                             : 0));
            series(*e, buf);
            break;
          case Kind::Histogram: {
            header(*e, "histogram");
            if (!e->histogram)
                break;
            uint64_t cumulative = 0;
            for (size_t i = 0; i < e->histogram->counts.size(); ++i) {
                cumulative += e->histogram->counts[i].load(
                    std::memory_order_relaxed);
                std::string le;
                if (i < e->histogram->bounds.size()) {
                    std::snprintf(buf, sizeof(buf), "le=\"%g\"",
                                  e->histogram->bounds[i]);
                    le = buf;
                } else {
                    le = "le=\"+Inf\"";
                }
                std::snprintf(buf, sizeof(buf), "%llu",
                              static_cast<unsigned long long>(
                                  cumulative));
                // _bucket series carry the le label.
                std::string name = e->name;
                out += name + "_bucket";
                std::string labels = e->label;
                labels += (labels.empty() ? "" : ",") + le;
                out += "{" + labels + "} " + buf + "\n";
            }
            std::snprintf(
                buf, sizeof(buf), "%.6f",
                static_cast<double>(e->histogram->sumMicro.load(
                    std::memory_order_relaxed)) /
                    1e6);
            out += e->name + "_sum" +
                   (e->label.empty() ? "" : "{" + e->label + "}") +
                   " " + buf + "\n";
            std::snprintf(buf, sizeof(buf), "%llu",
                          static_cast<unsigned long long>(
                              e->histogram->count.load(
                                  std::memory_order_relaxed)));
            out += e->name + "_count" +
                   (e->label.empty() ? "" : "{" + e->label + "}") +
                   " " + buf + "\n";
            break;
          }
        }
    }
    return out;
}

void
Registry::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &e : entries_) {
        if (e->counter)
            e->counter->reset();
        if (e->gauge)
            e->gauge->value.store(0, std::memory_order_relaxed);
        if (e->histogram)
            e->histogram->reset();
    }
}

} // namespace tea::obs
