#include "obs/trace.hh"

#include <chrono>
#include <cstdio>

#include "obs/json.hh"

namespace tea::obs {

namespace {

std::chrono::steady_clock::time_point
processEpoch()
{
    static const auto epoch = std::chrono::steady_clock::now();
    return epoch;
}

} // namespace

Tracer &
Tracer::global()
{
    static Tracer *tracer = new Tracer(); // never destroyed; the
    // atexit dump may run after static destructors would.
    return *tracer;
}

uint64_t
Tracer::nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - processEpoch())
            .count());
}

uint32_t
Tracer::threadId()
{
    static std::atomic<uint32_t> next{0};
    thread_local uint32_t mine =
        next.fetch_add(1, std::memory_order_relaxed);
    return mine;
}

void
Tracer::enable(size_t capacity)
{
    processEpoch(); // pin the epoch before the first span
    // Quiesce recorders while the ring is reallocated; enable() must
    // not run concurrently with itself (arm before spawning workers).
    enabled_.store(false, std::memory_order_release);
    ring_.assign(capacity ? capacity : kDefaultCapacity, Record{});
    cursor_.store(0, std::memory_order_relaxed);
    enabled_.store(true, std::memory_order_release);
}

void
Tracer::clear()
{
    cursor_.store(0, std::memory_order_relaxed);
}

void
Tracer::record(std::string_view name, const char *cat, uint64_t tsNs,
               uint64_t durNs, int64_t arg)
{
    if (!enabled() || ring_.empty())
        return;
    uint64_t i = cursor_.fetch_add(1, std::memory_order_relaxed);
    Record &r = ring_[i % ring_.size()];
    size_t n = std::min(name.size(), sizeof(r.name) - 1);
    std::memcpy(r.name, name.data(), n);
    r.name[n] = '\0';
    r.cat = cat;
    r.tsNs = tsNs;
    r.durNs = durNs;
    r.arg = arg;
    r.tid = threadId();
}

uint64_t
Tracer::dropped() const
{
    uint64_t total = cursor_.load(std::memory_order_relaxed);
    return total > ring_.size() ? total - ring_.size() : 0;
}

bool
Tracer::dumpTo(const std::string &path) const
{
    std::FILE *f = std::fopen(path.c_str(), "w");
    if (!f)
        return false;
    uint64_t total = cursor_.load(std::memory_order_relaxed);
    size_t live = ring_.empty()
                      ? 0
                      : static_cast<size_t>(
                            std::min<uint64_t>(total, ring_.size()));

    // Stream the trace_event object form directly: a ring of 64k
    // records would be wasteful to build as a json::Value tree first.
    std::fputs("{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n", f);
    bool first = true;
    for (size_t i = 0; i < live; ++i) {
        const Record &r = ring_[i];
        if (!first)
            std::fputs(",\n", f);
        first = false;
        std::string name = json::quote(r.name);
        // ts/dur are microseconds in the trace_event format.
        std::fprintf(f,
                     "{\"name\":%s,\"cat\":\"%s\",\"ph\":\"X\","
                     "\"ts\":%.3f,\"dur\":%.3f,\"pid\":1,\"tid\":%u",
                     name.c_str(), r.cat ? r.cat : "",
                     static_cast<double>(r.tsNs) / 1e3,
                     static_cast<double>(r.durNs) / 1e3, r.tid);
        if (r.arg >= 0)
            std::fprintf(f, ",\"args\":{\"i\":%lld}",
                         static_cast<long long>(r.arg));
        std::fputs("}", f);
    }
    std::fprintf(f,
                 "\n],\"otherData\":{\"recorded\":%llu,"
                 "\"dropped\":%llu}}\n",
                 static_cast<unsigned long long>(total),
                 static_cast<unsigned long long>(dropped()));
    bool ok = std::ferror(f) == 0;
    std::fclose(f);
    return ok;
}

} // namespace tea::obs
