/**
 * @file
 * Lock-sharded metrics registry: counters, gauges, fixed-bucket
 * histograms.
 *
 * Design constraints, in order:
 *
 *  1. **Near-free on the hot path.** A handle (Counter/Gauge/Histogram)
 *     is one pointer into registry-owned storage; incrementing is a
 *     relaxed atomic add with no allocation, no lock, no branch on
 *     export state. Counter cells are sharded across cache lines and
 *     each thread picks a home shard once, so concurrent workers do
 *     not bounce one cache line.
 *  2. **Deterministic-safe.** Metrics never touch RNG streams, never
 *     reorder merges, and never feed back into campaign control flow.
 *     They are observation only; campaign outputs are bit-identical
 *     with metrics on or off (tests/obs enforces this).
 *  3. **Registration is rare and locked.** counter()/gauge()/
 *     histogram() take the registry mutex, deduplicate by
 *     (name, label), and hand back a stable handle. Call sites cache
 *     handles in function-local statics.
 *
 * Export renders a snapshot as JSON or Prometheus text exposition
 * format (see obs.hh for the REPRO_METRICS wiring).
 */

#ifndef TEA_OBS_METRICS_HH
#define TEA_OBS_METRICS_HH

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <vector>

#include "obs/json.hh"

namespace tea::obs {

/** Counter shards; a power of two, each on its own cache line. */
constexpr unsigned kCounterShards = 16;

namespace detail {

struct alignas(64) ShardCell
{
    std::atomic<uint64_t> value{0};
};

/** This thread's home shard in [0, kCounterShards). */
unsigned shardIndex();

struct CounterData
{
    std::array<ShardCell, kCounterShards> shards;

    void add(uint64_t n)
    {
        shards[shardIndex()].value.fetch_add(n,
                                             std::memory_order_relaxed);
    }
    uint64_t total() const
    {
        uint64_t sum = 0;
        for (const auto &s : shards)
            sum += s.value.load(std::memory_order_relaxed);
        return sum;
    }
    void reset()
    {
        for (auto &s : shards)
            s.value.store(0, std::memory_order_relaxed);
    }
};

struct GaugeData
{
    std::atomic<int64_t> value{0};
};

struct HistogramData
{
    /** Inclusive upper bounds; one extra overflow bucket follows. */
    std::vector<double> bounds;
    std::vector<std::atomic<uint64_t>> counts; // bounds.size() + 1
    std::atomic<uint64_t> count{0};
    /** Sum in micro-units (value * 1e6), enough for wall-clock ms. */
    std::atomic<uint64_t> sumMicro{0};

    void observe(double v);
    void reset();
};

} // namespace detail

/** Monotonic counter handle. Copyable, trivially cheap. */
class Counter
{
  public:
    Counter() = default;
    void inc(uint64_t n = 1) const
    {
        if (d_)
            d_->add(n);
    }
    uint64_t value() const { return d_ ? d_->total() : 0; }

  private:
    friend class Registry;
    explicit Counter(detail::CounterData *d) : d_(d) {}
    detail::CounterData *d_ = nullptr;
};

/** Last-value gauge handle. */
class Gauge
{
  public:
    Gauge() = default;
    void set(int64_t v) const
    {
        if (d_)
            d_->value.store(v, std::memory_order_relaxed);
    }
    int64_t value() const
    {
        return d_ ? d_->value.load(std::memory_order_relaxed) : 0;
    }

  private:
    friend class Registry;
    explicit Gauge(detail::GaugeData *d) : d_(d) {}
    detail::GaugeData *d_ = nullptr;
};

/** Fixed-bucket histogram handle. */
class Histogram
{
  public:
    Histogram() = default;
    void observe(double v) const
    {
        if (d_)
            d_->observe(v);
    }
    uint64_t count() const
    {
        return d_ ? d_->count.load(std::memory_order_relaxed) : 0;
    }
    /** Count in bucket i (i == bounds.size() is the overflow bucket). */
    uint64_t bucketCount(size_t i) const
    {
        return d_ && i < d_->counts.size()
                   ? d_->counts[i].load(std::memory_order_relaxed)
                   : 0;
    }
    double sum() const
    {
        return d_ ? static_cast<double>(d_->sumMicro.load(
                        std::memory_order_relaxed)) /
                        1e6
                  : 0.0;
    }

  private:
    friend class Registry;
    explicit Histogram(detail::HistogramData *d) : d_(d) {}
    detail::HistogramData *d_ = nullptr;
};

/** Default bucket bounds for per-run / per-shard wall-clock ms. */
const std::vector<double> &latencyBucketsMs();

/**
 * The process-wide metric registry. Metrics are identified by
 * (name, label): `name` is the Prometheus-style family name
 * (`tea_..._total`), `label` an optional single `key="value"` pair so
 * one family can carry e.g. per-outcome counters.
 */
class Registry
{
  public:
    static Registry &global();

    Counter counter(const std::string &name,
                    const std::string &label = "",
                    const std::string &help = "");
    Gauge gauge(const std::string &name, const std::string &label = "",
                const std::string &help = "");
    Histogram histogram(const std::string &name,
                        std::vector<double> bounds,
                        const std::string &label = "",
                        const std::string &help = "");

    /** Snapshot every metric as a JSON object (see OBSERVABILITY.md). */
    json::Value snapshot() const;
    /** Prometheus text exposition format. */
    std::string renderPrometheus() const;

    /** Zero every metric value; handles stay valid (tests). */
    void reset();

  private:
    enum class Kind
    {
        Counter,
        Gauge,
        Histogram,
    };

    struct Entry
    {
        Kind kind;
        std::string name;
        std::string label;
        std::string help;
        std::unique_ptr<detail::CounterData> counter;
        std::unique_ptr<detail::GaugeData> gauge;
        std::unique_ptr<detail::HistogramData> histogram;
    };

    Entry *findOrCreate(Kind kind, const std::string &name,
                        const std::string &label,
                        const std::string &help);

    mutable std::mutex mutex_; ///< registration + snapshot only
    std::vector<std::unique_ptr<Entry>> entries_;
};

} // namespace tea::obs

#endif // TEA_OBS_METRICS_HH
